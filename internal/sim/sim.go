// Package sim provides sequential logic simulation for netlist circuits:
// a scalar three-valued (0/1/X) simulator used for initialization and
// test application, and a 64-way bit-parallel pattern simulator used by
// the random phases of the ATPG engines.
package sim

import (
	"fmt"

	"seqatpg/internal/netlist"
)

// Val is a three-valued logic value.
type Val byte

// Three-valued logic constants.
const (
	V0 Val = iota
	V1
	VX
)

// String returns "0", "1" or "X".
func (v Val) String() string {
	switch v {
	case V0:
		return "0"
	case V1:
		return "1"
	default:
		return "X"
	}
}

// NotV returns three-valued NOT.
func NotV(a Val) Val {
	switch a {
	case V0:
		return V1
	case V1:
		return V0
	default:
		return VX
	}
}

// AndV returns three-valued AND over the operands.
func AndV(vals ...Val) Val {
	sawX := false
	for _, v := range vals {
		switch v {
		case V0:
			return V0
		case VX:
			sawX = true
		}
	}
	if sawX {
		return VX
	}
	return V1
}

// OrV returns three-valued OR over the operands.
func OrV(vals ...Val) Val {
	sawX := false
	for _, v := range vals {
		switch v {
		case V1:
			return V1
		case VX:
			sawX = true
		}
	}
	if sawX {
		return VX
	}
	return V0
}

// XorV returns three-valued XOR over the operands.
func XorV(vals ...Val) Val {
	parity := V0
	for _, v := range vals {
		if v == VX {
			return VX
		}
		if v == V1 {
			parity = NotV(parity)
		}
	}
	return parity
}

// andTab/orTab/xorTab/notTab are the three-valued gate functions as
// lookup tables (indexed by Val pairs), the branch-free form the
// levelized Eval sweep folds over.
var (
	andTab = [3][3]Val{
		V0: {V0, V0, V0},
		V1: {V0, V1, VX},
		VX: {V0, VX, VX},
	}
	orTab = [3][3]Val{
		V0: {V0, V1, VX},
		V1: {V1, V1, V1},
		VX: {VX, V1, VX},
	}
	xorTab = [3][3]Val{
		V0: {V0, V1, VX},
		V1: {V1, V0, VX},
		VX: {VX, VX, VX},
	}
	notTab = [3]Val{V1, V0, VX}
)

// EvalGate computes a gate's output from its fanin values.
func EvalGate(t netlist.GateType, in []Val) Val {
	switch t {
	case netlist.Buf, netlist.Output, netlist.DFF:
		return in[0]
	case netlist.Not:
		return NotV(in[0])
	case netlist.And:
		return AndV(in...)
	case netlist.Nand:
		return NotV(AndV(in...))
	case netlist.Or:
		return OrV(in...)
	case netlist.Nor:
		return NotV(OrV(in...))
	case netlist.Xor:
		return XorV(in...)
	case netlist.Xnor:
		return NotV(XorV(in...))
	case netlist.Const0:
		return V0
	case netlist.Const1:
		return V1
	default:
		return VX
	}
}

// Simulator is a scalar three-valued sequential simulator. State lives
// in the DFFs; Step evaluates one clock cycle.
//
// Evaluation runs over the circuit's structure-of-arrays view
// (netlist.SoA): one levelized sweep streams through flat kind/fanin
// arrays by topological position with no per-gate allocation, instead
// of chasing each Gate's separately heap-allocated fanin slice.
type Simulator struct {
	c     *netlist.Circuit
	soa   *netlist.SoA
	vals  []Val // per-position value of the current evaluation
	next  []Val // per-DFF captured D value scratch
	state []Val // per-DFF Q value (indexed like c.DFFs)
}

// NewSimulator builds a simulator; the circuit must be valid. All DFFs
// power up at X.
func NewSimulator(c *netlist.Circuit) (*Simulator, error) {
	soa, err := netlist.NewSoA(c)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		c:     c,
		soa:   soa,
		vals:  make([]Val, len(c.Gates)),
		next:  make([]Val, len(c.DFFs)),
		state: make([]Val, len(c.DFFs)),
	}
	s.PowerUp()
	return s, nil
}

// PowerUp sets every DFF to X (the unknown power-on state).
func (s *Simulator) PowerUp() {
	for i := range s.state {
		s.state[i] = VX
	}
}

// SetState forces the DFF values (must match NumDFFs in length).
func (s *Simulator) SetState(vals []Val) error {
	if len(vals) != len(s.state) {
		return fmt.Errorf("sim: state width %d, want %d", len(vals), len(s.state))
	}
	copy(s.state, vals)
	return nil
}

// State returns a copy of the current DFF values.
func (s *Simulator) State() []Val {
	return append([]Val(nil), s.state...)
}

// StateKnown reports whether every DFF holds a binary value.
func (s *Simulator) StateKnown() bool {
	for _, v := range s.state {
		if v == VX {
			return false
		}
	}
	return true
}

// StateBits packs a fully known state into a bit vector (bit i = DFF i).
// The second result is false when any DFF is X.
func (s *Simulator) StateBits() (uint64, bool) {
	var out uint64
	for i, v := range s.state {
		switch v {
		case V1:
			out |= 1 << uint(i)
		case VX:
			return 0, false
		}
	}
	return out, true
}

// Eval evaluates the combinational logic for the given PI values without
// clocking the DFFs, and returns the PO values.
func (s *Simulator) Eval(inputs []Val) ([]Val, error) {
	if len(inputs) != len(s.soa.PIPos) {
		return nil, fmt.Errorf("sim: %d inputs, want %d", len(inputs), len(s.soa.PIPos))
	}
	for i, p := range s.soa.PIPos {
		s.vals[p] = inputs[i]
	}
	for i, p := range s.soa.DFFPos {
		s.vals[p] = s.state[i]
	}
	kinds, faninOff, fan, vals := s.soa.Kind, s.soa.FaninOff, s.soa.Fanin, s.vals
	for p := range kinds {
		kind := kinds[p]
		off, end := faninOff[p], faninOff[p+1]
		if off == end {
			switch kind {
			case netlist.Const0:
				vals[p] = V0
			case netlist.Const1:
				vals[p] = V1
			case netlist.Input:
				// loaded above
			default:
				vals[p] = VX
			}
			continue
		}
		v := vals[fan[off]]
		switch kind {
		case netlist.Input, netlist.DFF:
			// loaded above
			continue
		case netlist.And, netlist.Nand:
			for k := off + 1; k < end; k++ {
				v = andTab[v][vals[fan[k]]]
			}
			if kind == netlist.Nand {
				v = notTab[v]
			}
		case netlist.Or, netlist.Nor:
			for k := off + 1; k < end; k++ {
				v = orTab[v][vals[fan[k]]]
			}
			if kind == netlist.Nor {
				v = notTab[v]
			}
		case netlist.Xor, netlist.Xnor:
			for k := off + 1; k < end; k++ {
				v = xorTab[v][vals[fan[k]]]
			}
			if kind == netlist.Xnor {
				v = notTab[v]
			}
		case netlist.Not:
			v = notTab[v]
		case netlist.Buf, netlist.Output:
			// v is already the single fanin's value.
		default:
			v = VX
		}
		vals[p] = v
	}
	outs := make([]Val, len(s.soa.POPos))
	for i, p := range s.soa.POPos {
		outs[i] = vals[p]
	}
	return outs, nil
}

// Step evaluates one clock cycle: combinational evaluation at the given
// inputs, then a simultaneous DFF update. Returns the PO values sampled
// before the clock edge.
func (s *Simulator) Step(inputs []Val) ([]Val, error) {
	outs, err := s.Eval(inputs)
	if err != nil {
		return nil, err
	}
	for i, dp := range s.soa.DFFD {
		s.next[i] = s.vals[dp]
	}
	copy(s.state, s.next)
	return outs, nil
}

// Value returns the value of gate id from the latest evaluation.
func (s *Simulator) Value(id int) Val { return s.vals[s.soa.Pos[id]] }
