package sim

import (
	"fmt"

	"seqatpg/internal/netlist"
)

// EventSim is an event-driven three-valued sequential simulator: only
// gates whose fanins changed are re-evaluated, which is the classic
// optimization (PROOFS lineage) for long test sequences where activity
// per vector is low. Semantics are identical to Simulator.
type EventSim struct {
	c       *netlist.Circuit
	order   []int // topological order
	pos     []int // gate id -> position in order
	fanouts [][]int
	vals    []Val
	state   []Val

	// scheduled marks gates queued for evaluation this cycle; the queue
	// is drained in topological position order via a simple bucket list.
	scheduled []bool
	buckets   [][]int
}

// NewEventSim builds an event-driven simulator; all DFFs power up at X.
func NewEventSim(c *netlist.Circuit) (*EventSim, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	s := &EventSim{
		c:         c,
		order:     order,
		pos:       make([]int, len(c.Gates)),
		fanouts:   c.Fanouts(),
		vals:      make([]Val, len(c.Gates)),
		state:     make([]Val, len(c.DFFs)),
		scheduled: make([]bool, len(c.Gates)),
		buckets:   make([][]int, len(order)),
	}
	for i, id := range order {
		s.pos[id] = i
	}
	for i := range s.vals {
		s.vals[i] = VX
	}
	s.PowerUp()
	// Initial full evaluation pass is implied by everything being X and
	// inputs unset; the first Step schedules all sources.
	for id := range c.Gates {
		s.schedule(id)
	}
	return s, nil
}

// PowerUp resets every DFF to X.
func (s *EventSim) PowerUp() {
	for i := range s.state {
		if s.state[i] != VX {
			s.state[i] = VX
			s.schedule(s.c.DFFs[i])
		}
	}
}

// SetState forces the DFF values.
func (s *EventSim) SetState(vals []Val) error {
	if len(vals) != len(s.state) {
		return fmt.Errorf("sim: state width %d, want %d", len(vals), len(s.state))
	}
	for i, v := range vals {
		if s.state[i] != v {
			s.state[i] = v
			s.schedule(s.c.DFFs[i])
		}
	}
	return nil
}

// State returns a copy of the DFF values.
func (s *EventSim) State() []Val { return append([]Val(nil), s.state...) }

func (s *EventSim) schedule(id int) {
	if !s.scheduled[id] {
		s.scheduled[id] = true
		p := s.pos[id]
		s.buckets[p] = append(s.buckets[p], id)
	}
}

// Step applies one clock cycle and returns the PO values before the
// edge. Evaluations counts gate evaluations performed (the activity
// measure).
func (s *EventSim) Step(inputs []Val) (outs []Val, evaluations int, err error) {
	if len(inputs) != len(s.c.PIs) {
		return nil, 0, fmt.Errorf("sim: %d inputs, want %d", len(inputs), len(s.c.PIs))
	}
	for i, id := range s.c.PIs {
		if s.vals[id] != inputs[i] {
			s.vals[id] = inputs[i]
			for _, o := range s.fanouts[id] {
				s.schedule(o)
			}
		}
	}
	for i, id := range s.c.DFFs {
		if s.vals[id] != s.state[i] {
			s.vals[id] = s.state[i]
			for _, o := range s.fanouts[id] {
				s.schedule(o)
			}
		}
	}
	// Drain the buckets in topological order; a changed gate schedules
	// its fanouts (which sit at later positions, except DFFs which are
	// handled at the clock edge).
	in := make([]Val, netlist.MaxFanin)
	for p := 0; p < len(s.buckets); p++ {
		for _, id := range s.buckets[p] {
			s.scheduled[id] = false
			g := s.c.Gates[id]
			switch g.Type {
			case netlist.Input, netlist.DFF:
				continue // loaded above; value changes already propagated
			}
			args := in[:len(g.Fanin)]
			for k, f := range g.Fanin {
				args[k] = s.vals[f]
			}
			v := EvalGate(g.Type, args)
			evaluations++
			if v != s.vals[id] {
				s.vals[id] = v
				for _, o := range s.fanouts[id] {
					if s.c.Gates[o].Type != netlist.DFF {
						s.schedule(o)
					}
				}
			}
		}
		s.buckets[p] = s.buckets[p][:0]
	}
	outs = make([]Val, len(s.c.POs))
	for i, id := range s.c.POs {
		outs[i] = s.vals[id]
	}
	// Clock edge: capture D values.
	for i, id := range s.c.DFFs {
		s.state[i] = s.vals[s.c.Gates[id].Fanin[0]]
	}
	return outs, evaluations, nil
}
