package sim

import (
	"bufio"
	"fmt"
	"io"

	"seqatpg/internal/netlist"
)

// DumpVCD simulates the circuit over the test sequence (from power-up)
// and writes a Value Change Dump of the primary inputs, primary outputs
// and state bits — viewable in any waveform viewer. One VCD time unit
// per clock cycle.
func DumpVCD(w io.Writer, c *netlist.Circuit, seq [][]Val) error {
	s, err := NewSimulator(c)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)

	// Identifier codes: printable ASCII starting at '!'.
	type signal struct {
		gate int
		name string
		code string
		kind byte // 'i' input, 'o' output, 's' state
	}
	var signals []signal
	code := func(n int) string {
		// Base-94 identifiers.
		out := []byte{}
		for {
			out = append(out, byte('!'+n%94))
			n /= 94
			if n == 0 {
				break
			}
		}
		return string(out)
	}
	add := func(gate int, name string, kind byte) {
		if name == "" {
			name = fmt.Sprintf("n%d", gate)
		}
		signals = append(signals, signal{gate, name, code(len(signals)), kind})
	}
	for _, id := range c.PIs {
		add(id, c.Gates[id].Name, 'i')
	}
	for _, id := range c.POs {
		add(id, c.Gates[id].Name, 'o')
	}
	for _, id := range c.DFFs {
		add(id, c.Gates[id].Name, 's')
	}

	fmt.Fprintf(bw, "$date reproduction run $end\n")
	fmt.Fprintf(bw, "$version seqatpg $end\n")
	fmt.Fprintf(bw, "$timescale 1ns $end\n")
	fmt.Fprintf(bw, "$scope module %s $end\n", c.Name)
	for _, sig := range signals {
		fmt.Fprintf(bw, "$var wire 1 %s %s $end\n", sig.code, sig.name)
	}
	fmt.Fprintf(bw, "$upscope $end\n$enddefinitions $end\n")

	vcdVal := func(v Val) byte {
		switch v {
		case V0:
			return '0'
		case V1:
			return '1'
		default:
			return 'x'
		}
	}
	last := make(map[string]byte)
	emit := func(t int, sig signal, v Val) {
		ch := vcdVal(v)
		if prev, ok := last[sig.code]; ok && prev == ch {
			return
		}
		last[sig.code] = ch
		fmt.Fprintf(bw, "%c%s\n", ch, sig.code)
	}

	for t, vec := range seq {
		fmt.Fprintf(bw, "#%d\n", t)
		// Inputs take their new values; evaluate; sample outputs and the
		// (pre-edge) state.
		if _, err := s.Eval(vec); err != nil {
			return err
		}
		for _, sig := range signals {
			switch sig.kind {
			case 'i':
				for i, id := range c.PIs {
					if id == sig.gate {
						emit(t, sig, vec[i])
					}
				}
			default:
				emit(t, sig, s.Value(sig.gate))
			}
		}
		// Clock.
		if _, err := s.Step(vec); err != nil {
			return err
		}
	}
	fmt.Fprintf(bw, "#%d\n", len(seq))
	return bw.Flush()
}
