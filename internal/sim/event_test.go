package sim

import (
	"math/rand"
	"testing"

	"seqatpg/internal/netlist"
)

// randomSeq builds a random sequential circuit with nIn inputs, nGates
// gates and two reset-gated DFFs.
func randomSeq(rng *rand.Rand, nIn, nGates int) *netlist.Circuit {
	c := netlist.New("ev")
	reset := c.AddGate(netlist.Input, "reset")
	c.ResetPI = reset
	for i := 0; i < nIn; i++ {
		c.AddGate(netlist.Input, "")
	}
	nr := c.AddGate(netlist.Not, "nr", reset)
	ff1 := c.AddGate(netlist.DFF, "q1", 0)
	ff2 := c.AddGate(netlist.DFF, "q2", 0)
	last := nr
	for i := 0; i < nGates; i++ {
		types := []netlist.GateType{netlist.And, netlist.Or, netlist.Nand, netlist.Nor, netlist.Xor, netlist.Not, netlist.Buf}
		gt := types[rng.Intn(len(types))]
		n := 2
		if gt == netlist.Not || gt == netlist.Buf {
			n = 1
		}
		fanin := make([]int, n)
		for k := range fanin {
			fanin[k] = rng.Intn(len(c.Gates))
		}
		last = c.AddGate(gt, "", fanin...)
	}
	c.Gates[ff1].Fanin[0] = c.AddGate(netlist.And, "d1", nr, last)
	c.Gates[ff2].Fanin[0] = c.AddGate(netlist.And, "d2", nr, ff1)
	c.AddGate(netlist.Output, "o1", last)
	c.AddGate(netlist.Output, "o2", ff2)
	return c
}

// TestEventSimMatchesOblivious: identical outputs and states over long
// random sequences, across many random circuits.
func TestEventSimMatchesOblivious(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		c := randomSeq(rng, 4, 20)
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ref, err := NewSimulator(c)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := NewEventSim(c)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 50; step++ {
			vec := make([]Val, len(c.PIs))
			for i := range vec {
				vec[i] = Val(rng.Intn(3)) // include X inputs
			}
			if step == 0 {
				vec[0] = V1 // reset first
			}
			want, err := ref.Step(vec)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := ev.Step(vec)
			if err != nil {
				t.Fatal(err)
			}
			for k := range want {
				if want[k] != got[k] {
					t.Fatalf("trial %d step %d output %d: event %v vs oblivious %v",
						trial, step, k, got[k], want[k])
				}
			}
			ws, gs := ref.State(), ev.State()
			for k := range ws {
				if ws[k] != gs[k] {
					t.Fatalf("trial %d step %d state %d diverged", trial, step, k)
				}
			}
		}
	}
}

// TestEventSimActivityDrops: after the first full evaluation, a
// repeated identical vector must cost (near) zero evaluations.
func TestEventSimActivityDrops(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randomSeq(rng, 4, 30)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	ev, err := NewEventSim(c)
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]Val, len(c.PIs))
	vec[0] = V1 // hold reset: state stabilizes
	var first, later int
	if _, first, err = ev.Step(vec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, later, err = ev.Step(vec); err != nil {
			t.Fatal(err)
		}
	}
	if later >= first {
		t.Errorf("activity did not drop: first=%d later=%d", first, later)
	}
	if later > len(c.Gates)/2 {
		t.Errorf("steady-state activity suspiciously high: %d of %d gates", later, len(c.Gates))
	}
}

func TestEventSimSetStateSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := randomSeq(rng, 3, 15)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	ref, _ := NewSimulator(c)
	ev, _ := NewEventSim(c)
	st := make([]Val, len(c.DFFs))
	for i := range st {
		st[i] = V1
	}
	ref.SetState(st)
	if err := ev.SetState(st); err != nil {
		t.Fatal(err)
	}
	vec := make([]Val, len(c.PIs))
	want, _ := ref.Step(vec)
	got, _, err := ev.Step(vec)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if want[k] != got[k] {
			t.Fatalf("output %d: %v vs %v", k, got[k], want[k])
		}
	}
}

func TestEventSimWidthErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomSeq(rng, 3, 10)
	ev, err := NewEventSim(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ev.Step([]Val{V0}); err == nil {
		t.Error("wrong width must error")
	}
	if err := ev.SetState([]Val{V0}); err == nil {
		t.Error("wrong state width must error")
	}
}
