package fabric

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"seqatpg/internal/rescache"
)

// MetricsSnapshot is a point-in-time view of the coordinator's fleet
// counters, for tests and callers that do not scrape Prometheus.
type MetricsSnapshot struct {
	// LeasesActive is how many shards are currently dispatched and
	// under a live lease.
	LeasesActive int64
	// RedispatchTotal counts shard dispatches after the first — every
	// lease loss, worker failure or torn result that moved a shard.
	RedispatchTotal int64
	// WorkerEjectedTotal counts circuit-breaker openings across the
	// fleet.
	WorkerEjectedTotal int64
	// ShardsRestoredTotal counts shards whose finished results were
	// restored from the durable journal instead of re-run.
	ShardsRestoredTotal int64
	// ShardsCachedTotal counts shards served from the content-addressed
	// result cache instead of dispatched.
	ShardsCachedTotal int64
	// WorkerInflight maps worker URL to its currently dispatched shard
	// jobs.
	WorkerInflight map[string]int64
	// PredictedShardEvalsMax/Min bound the predicted load spread of the
	// current balanced placement, and PredictedEvalsTotal is the whole
	// campaign's predicted effort; all zero when Balance is off. A
	// max/min ratio near 1 means no shard was packed into a straggler.
	PredictedShardEvalsMax int64
	PredictedShardEvalsMin int64
	PredictedEvalsTotal    int64
}

// Metrics snapshots the coordinator's counters.
func (c *Coordinator) Metrics() MetricsSnapshot {
	snap := MetricsSnapshot{
		LeasesActive:           c.leasesActive.Load(),
		RedispatchTotal:        c.redispatch.Load(),
		ShardsRestoredTotal:    c.shardsRestored.Load(),
		ShardsCachedTotal:      c.shardsCached.Load(),
		WorkerInflight:         map[string]int64{},
		PredictedShardEvalsMax: c.predShardMax.Load(),
		PredictedShardEvalsMin: c.predShardMin.Load(),
		PredictedEvalsTotal:    c.predTotal.Load(),
	}
	for _, cl := range c.clients {
		snap.WorkerEjectedTotal += cl.Ejections()
		snap.WorkerInflight[cl.URL()] = c.inflight[cl.URL()].Load()
	}
	return snap
}

// MetricsHandler serves the coordinator's counters in Prometheus text
// exposition format, same hand-rolled style as the worker's /metrics.
func (c *Coordinator) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := c.Metrics()
		var b strings.Builder
		gauge := func(name, help string, v int64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
		}
		counter := func(name, help string, v int64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
		}
		gauge("atpg_fabric_leases_active", "Shards currently dispatched under a live lease.", snap.LeasesActive)
		counter("atpg_fabric_redispatch_total", "Shard dispatches after the first (lease losses, worker failures).", snap.RedispatchTotal)
		counter("atpg_fabric_worker_ejected_total", "Circuit-breaker openings across the fleet.", snap.WorkerEjectedTotal)
		counter("atpg_fabric_shards_restored_total", "Shards restored from the durable journal on coordinator restart.", snap.ShardsRestoredTotal)
		counter("atpg_fabric_shards_cached_total", "Shards served from the content-addressed result cache instead of dispatched.", snap.ShardsCachedTotal)
		gauge("atpg_fabric_predicted_shard_evals_max", "Predicted evaluations of the heaviest shard in the balanced placement (0 when balancing is off).", snap.PredictedShardEvalsMax)
		gauge("atpg_fabric_predicted_shard_evals_min", "Predicted evaluations of the lightest shard in the balanced placement (0 when balancing is off).", snap.PredictedShardEvalsMin)
		gauge("atpg_fabric_predicted_evals_total", "Predicted evaluations of the whole placed campaign (0 when balancing is off).", snap.PredictedEvalsTotal)
		var cs rescache.Stats
		if c.opts.Cache != nil {
			cs = c.opts.Cache.Stats()
		}
		counter("atpg_cache_hits_total", "Result-cache lookups served from a stored entry.", cs.Hits)
		counter("atpg_cache_misses_total", "Result-cache lookups that fell through to a dispatch.", cs.Misses)
		counter("atpg_cache_evictions_total", "Result-cache entries evicted to stay under the capacity bound.", cs.Evictions)
		counter("atpg_cache_quarantined_total", "Corrupt result-cache entries quarantined and treated as misses.", cs.Quarantined)
		gauge("atpg_cache_bytes", "Payload bytes currently stored in the result cache.", cs.Bytes)
		fmt.Fprintf(&b, "# HELP atpg_fabric_worker_inflight Shard jobs currently dispatched to each worker.\n# TYPE atpg_fabric_worker_inflight gauge\n")
		workers := make([]string, 0, len(snap.WorkerInflight))
		for w := range snap.WorkerInflight {
			workers = append(workers, w)
		}
		sort.Strings(workers)
		for _, wk := range workers {
			fmt.Fprintf(&b, "atpg_fabric_worker_inflight{worker=%q} %d\n", wk, snap.WorkerInflight[wk])
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(b.String()))
	})
}
