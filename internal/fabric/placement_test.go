package fabric

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"seqatpg/internal/campaign"
	"seqatpg/internal/service"
)

// sortedSeqs renders generated test sequences order-independently:
// placement legitimately permutes Result.Tests (the concatenation
// follows the partition), so invariance is pinned on the multiset.
func sortedSeqs(res *campaign.Result) []string {
	out := make([]string, len(res.Tests))
	for i, seq := range res.Tests {
		out[i] = fmt.Sprintf("%v", seq)
	}
	sort.Strings(out)
	return out
}

// TestFabricBalancedPlacementInvariance: packing shards by predicted
// cost instead of round-robin must not change a single verdict — the
// soundness rule is that prediction only moves work between workers.
// For K ∈ {2, 3}, a Balance-on federated run reproduces the K=1
// reference's outcomes, stats and test multiset, and the coordinator
// reports the placement's predicted load spread.
func TestFabricBalancedPlacementInvariance(t *testing.T) {
	spec := service.Spec{Name: "balanced", Netlist: benchText(t, 5, 2), MaxFaults: 16}
	w0, w1 := startWorker(t, nil), startWorker(t, nil)

	single := reference(t, spec, 1)
	p, err := service.Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 3} {
		// Sanity: the balanced partition is a real repacking, not the
		// round-robin split under a different flag.
		idxs, _, err := service.PlanShards(p.Circuit, p.Faults, k)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(idxs, campaign.ShardIndices(len(p.Faults), k)) {
			t.Logf("K=%d: balanced partition coincides with round-robin", k)
		}

		coord, err := NewCoordinator(Options{
			Workers:   []string{w0.url(), w1.url()},
			Shards:    k,
			Balance:   true,
			Lease:     5 * time.Second,
			Heartbeat: 10 * time.Millisecond,
			Client:    chaosClientOptions(),
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := coord.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if !reflect.DeepEqual(got.Outcomes, single.Outcomes) {
			t.Fatalf("K=%d: balanced placement changed verdicts", k)
		}
		if !reflect.DeepEqual(got.Stats, single.Stats) {
			t.Fatalf("K=%d: balanced placement changed stats:\n got %+v\nwant %+v", k, got.Stats, single.Stats)
		}
		if !reflect.DeepEqual(sortedSeqs(got), sortedSeqs(single)) {
			t.Fatalf("K=%d: balanced placement changed the generated test multiset", k)
		}
		snap := coord.Metrics()
		if snap.PredictedEvalsTotal <= 0 || snap.PredictedShardEvalsMax <= 0 {
			t.Fatalf("K=%d: placement metrics not recorded: %+v", k, snap)
		}
		if snap.PredictedShardEvalsMin > snap.PredictedShardEvalsMax {
			t.Fatalf("K=%d: predicted min %d > max %d", k, snap.PredictedShardEvalsMin, snap.PredictedShardEvalsMax)
		}
	}
}
