package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"seqatpg/internal/campaign"
	"seqatpg/internal/service"
)

// Client errors.
var (
	// ErrBreakerOpen reports a call refused locally because the
	// worker's circuit breaker is open: the worker has failed enough
	// consecutive calls that hammering it further only wastes lease
	// time. The breaker half-opens after probation.
	ErrBreakerOpen = errors.New("fabric: worker circuit breaker open")
	// ErrNoCheckpoint reports that a job has written no checkpoint yet.
	ErrNoCheckpoint = errors.New("fabric: job has no checkpoint yet")
	// ErrIncompatible reports a worker whose version handshake does not
	// match this coordinator.
	ErrIncompatible = errors.New("fabric: worker version incompatible")
	// errStatus is the retry classifier's wrapper for HTTP-level
	// failures.
	errStatus = errors.New("fabric: http error status")
)

// ClientOptions tunes the retrying worker client and its breaker.
// The zero value selects the documented defaults.
type ClientOptions struct {
	// RetryMax is how many retries follow a failed attempt (so a call
	// issues at most RetryMax+1 requests); zero selects 3, negative
	// disables retries.
	RetryMax int
	// RequestTimeout bounds each individual attempt; zero selects 10s.
	RequestTimeout time.Duration
	// BackoffBase is the first retry's backoff; attempt n waits
	// BackoffBase << n, capped at BackoffMax, each with up to 50%
	// deterministic jitter. Zero selects 100ms.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff; zero selects 5s.
	BackoffMax time.Duration
	// JitterSeed seeds the backoff jitter so chaos runs are
	// reproducible; zero selects 1.
	JitterSeed int64
	// BreakerThreshold is how many consecutive request failures open
	// the worker's circuit breaker; zero selects 8, negative disables
	// the breaker.
	BreakerThreshold int
	// Probation is how long an open breaker rejects calls before
	// half-opening for a single probe; zero selects 15s.
	Probation time.Duration
	// Transport is the HTTP transport (FaultRT in chaos tests); nil
	// selects http.DefaultTransport.
	Transport http.RoundTripper
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.RetryMax == 0 {
		o.RetryMax = 3
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.JitterSeed == 0 {
		o.JitterSeed = 1
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 8
	}
	if o.Probation <= 0 {
		o.Probation = 15 * time.Second
	}
	return o
}

// Client talks to one worker: every call goes through per-attempt
// timeouts, jittered exponential backoff on retryable failures
// (transport errors, 5xx, 429 — honoring Retry-After), and the
// worker's circuit breaker. 4xx responses other than 429 are the
// worker answering coherently, so they never count against it.
type Client struct {
	url  string
	opts ClientOptions
	hc   *http.Client
	brk  breaker

	mu  sync.Mutex
	rng *rand.Rand
}

// NewClient builds a client for the worker at base URL (no trailing
// slash required).
func NewClient(base string, opts ClientOptions) *Client {
	opts = opts.withDefaults()
	return &Client{
		url:  strings.TrimRight(base, "/"),
		opts: opts,
		hc:   &http.Client{Transport: opts.Transport},
		rng:  rand.New(rand.NewSource(opts.JitterSeed)),
		brk: breaker{
			threshold: opts.BreakerThreshold,
			probation: opts.Probation,
		},
	}
}

// URL reports the worker's base URL.
func (c *Client) URL() string { return c.url }

// Available reports whether the breaker would let a call through right
// now, without consuming the half-open probe. The coordinator's worker
// selection uses it to skip ejected workers.
func (c *Client) Available() bool { return c.brk.available() }

// Ejections reports how many times this worker's breaker has opened.
func (c *Client) Ejections() int64 { return c.brk.ejections() }

// backoff computes the jittered exponential delay before retry n.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.BackoffBase << uint(attempt)
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	c.mu.Lock()
	jitter := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.mu.Unlock()
	return d + jitter
}

// do runs one API call with retries. A non-nil out receives the
// decoded JSON body; raw callers pass nil and use doRaw instead.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	data, err := c.doRaw(ctx, method, path, in)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("fabric: decode %s %s: %w", method, path, err)
	}
	return nil
}

// doRaw is the retry loop. It returns the response body bytes of the
// first successful attempt.
func (c *Client) doRaw(ctx context.Context, method, path string, in any) ([]byte, error) {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return nil, fmt.Errorf("fabric: encode %s %s: %w", method, path, err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := c.brk.allow(); err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last failure: %v)", err, lastErr)
			}
			return nil, err
		}
		data, retryable, retryAfter, err := c.attempt(ctx, method, path, body)
		if err == nil {
			return data, nil
		}
		lastErr = err
		if !retryable || attempt >= c.opts.RetryMax || ctx.Err() != nil {
			return nil, lastErr
		}
		wait := c.backoff(attempt)
		if retryAfter > wait {
			wait = retryAfter
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, fmt.Errorf("fabric: %s %s: %w (last failure: %v)", method, path, ctx.Err(), lastErr)
		}
	}
}

// attempt issues one HTTP request and classifies the outcome: success,
// a clean API error (not retryable, not the worker's fault), or a
// worker/transport failure (retryable, feeds the breaker).
func (c *Client) attempt(ctx context.Context, method, path string, body []byte) (data []byte, retryable bool, retryAfter time.Duration, err error) {
	rctx, cancel := context.WithTimeout(ctx, c.opts.RequestTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, c.url+path, rd)
	if err != nil {
		return nil, false, 0, fmt.Errorf("fabric: %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.brk.failure()
		return nil, true, 0, fmt.Errorf("fabric: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		// A torn response body is a transport failure even though the
		// status arrived intact.
		c.brk.failure()
		return nil, true, 0, fmt.Errorf("fabric: %s %s: read response: %w", method, path, err)
	}
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		c.brk.success()
		return data, false, 0, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		// The worker is alive and protecting itself; honor its stated
		// backoff without penalizing it.
		c.brk.success()
		after := time.Duration(0)
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			after = time.Duration(secs) * time.Second
		}
		return nil, true, after, fmt.Errorf("fabric: %s %s: %w %d: %s", method, path, errStatus, resp.StatusCode, strings.TrimSpace(string(data)))
	case resp.StatusCode >= 500:
		c.brk.failure()
		return nil, true, 0, fmt.Errorf("fabric: %s %s: %w %d: %s", method, path, errStatus, resp.StatusCode, strings.TrimSpace(string(data)))
	default:
		// A coherent 4xx: the worker is healthy, the request is wrong
		// (or the resource is absent). Not retryable.
		c.brk.success()
		return nil, false, 0, fmt.Errorf("fabric: %s %s: %w %d: %s", method, path, errStatus, resp.StatusCode, strings.TrimSpace(string(data)))
	}
}

// statusCodeOf extracts the HTTP status from an errStatus error chain,
// or 0.
func statusCodeOf(err error) int {
	if err == nil || !errors.Is(err, errStatus) {
		return 0
	}
	msg := err.Error()
	k := strings.Index(msg, errStatus.Error())
	if k < 0 {
		return 0
	}
	rest := strings.TrimSpace(msg[k+len(errStatus.Error()):])
	if len(rest) < 3 {
		return 0
	}
	code, err2 := strconv.Atoi(rest[:3])
	if err2 != nil {
		return 0
	}
	return code
}

// Version performs the handshake.
func (c *Client) Version(ctx context.Context) (service.VersionInfo, error) {
	var v service.VersionInfo
	err := c.do(ctx, http.MethodGet, "/version", nil, &v)
	return v, err
}

// Ready probes readiness. A 503 is a coherent "not ready", not an
// error; transport failures still surface as errors.
func (c *Client) Ready(ctx context.Context) (service.ReadyStatus, error) {
	var st service.ReadyStatus
	err := c.do(ctx, http.MethodGet, "/readyz", nil, &st)
	if err != nil && statusCodeOf(err) == http.StatusServiceUnavailable {
		return service.ReadyStatus{Ready: false}, nil
	}
	return st, err
}

// Submit submits a job and returns its id.
func (c *Client) Submit(ctx context.Context, spec service.Spec) (string, error) {
	var out struct {
		ID string `json:"id"`
	}
	if err := c.do(ctx, http.MethodPost, "/jobs", spec, &out); err != nil {
		return "", err
	}
	if out.ID == "" {
		return "", fmt.Errorf("fabric: worker %s returned an empty job id", c.url)
	}
	return out.ID, nil
}

// Status fetches one job's status snapshot.
func (c *Client) Status(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &st)
	return st, err
}

// Cancel requests cancellation of a job. Best-effort callers ignore
// the error.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/jobs/"+id+"/cancel", nil, nil)
}

// Checkpoint fetches the job's newest durable checkpoint bytes.
// ErrNoCheckpoint means the job has not checkpointed yet.
func (c *Client) Checkpoint(ctx context.Context, id string) ([]byte, error) {
	data, err := c.doRaw(ctx, http.MethodGet, "/jobs/"+id+"/checkpoint", nil)
	if err != nil {
		if statusCodeOf(err) == http.StatusNotFound {
			return nil, ErrNoCheckpoint
		}
		return nil, err
	}
	return data, nil
}

// ShardResult fetches and decodes the merge-ready result of a done
// shard job.
func (c *Client) ShardResult(ctx context.Context, id string) (*campaign.Result, error) {
	data, err := c.doRaw(ctx, http.MethodGet, "/jobs/"+id+"/shard-result", nil)
	if err != nil {
		return nil, err
	}
	return campaign.DecodeResult(data)
}

// breaker is a per-worker circuit breaker: consecutive failures past
// the threshold open it, an open breaker rejects calls until probation
// elapses, then a single half-open probe decides — success closes it,
// failure re-opens for another probation.
type breaker struct {
	threshold int
	probation time.Duration

	mu       sync.Mutex
	failures int
	open     bool
	until    time.Time
	probing  bool
	ejects   int64
	onEject  func()
}

func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return nil
	}
	if time.Now().Before(b.until) {
		return ErrBreakerOpen
	}
	// Probation over: admit exactly one probe at a time.
	if b.probing {
		return ErrBreakerOpen
	}
	b.probing = true
	return nil
}

func (b *breaker) available() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	return !time.Now().Before(b.until) && !b.probing
}

func (b *breaker) success() {
	b.mu.Lock()
	b.failures = 0
	b.open = false
	b.probing = false
	b.mu.Unlock()
}

func (b *breaker) failure() {
	b.mu.Lock()
	b.failures++
	wasOpen := b.open
	var eject func()
	if b.threshold > 0 && b.failures >= b.threshold {
		b.open = true
		b.until = time.Now().Add(b.probation)
		b.probing = false
		if !wasOpen {
			b.ejects++
			eject = b.onEject
		}
	}
	b.mu.Unlock()
	if eject != nil {
		eject()
	}
}

func (b *breaker) ejections() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ejects
}
