package fabric

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// countingServer serves a fixed body and counts how many requests
// actually reached it (past the fault layer).
func countingServer(t *testing.T, body string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func TestFaultRTFailWindow(t *testing.T) {
	ts, hits := countingServer(t, "ok")
	rt := NewFaultRT(nil, RTRule{From: 0, Count: 2, Mode: RTFail})
	hc := &http.Client{Transport: rt}

	for i := 0; i < 2; i++ {
		if _, err := hc.Get(ts.URL); err == nil {
			t.Fatalf("request %d passed through a fail window", i)
		} else if !errors.Is(err, ErrRTInjected) {
			t.Fatalf("request %d: error %v does not wrap ErrRTInjected", i, err)
		}
	}
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatalf("request past the window: %v", err)
	}
	resp.Body.Close()
	if rt.Requests() != 3 || rt.Trips() != 2 || hits.Load() != 1 {
		t.Fatalf("requests=%d trips=%d hits=%d, want 3/2/1", rt.Requests(), rt.Trips(), hits.Load())
	}
}

func TestFaultRTMatchers(t *testing.T) {
	ts, _ := countingServer(t, "ok")
	// Wrong method, wrong path, wrong host: none fire.
	rt := NewFaultRT(nil,
		RTRule{Method: "POST", Mode: RTFail},
		RTRule{PathContains: "/jobs", Mode: RTFail},
		RTRule{HostContains: "no-such-host", Mode: RTFail},
	)
	hc := &http.Client{Transport: rt}
	resp, err := hc.Get(ts.URL + "/version")
	if err != nil {
		t.Fatalf("non-matching rules fired: %v", err)
	}
	resp.Body.Close()
	if rt.Trips() != 0 {
		t.Fatalf("trips=%d, want 0", rt.Trips())
	}
	// A matching path rule fires.
	resp2, err := hc.Get(ts.URL + "/jobs/abc")
	if err == nil {
		resp2.Body.Close()
		t.Fatal("path rule did not fire")
	}
}

func TestFaultRTTornResponse(t *testing.T) {
	ts, _ := countingServer(t, "a perfectly healthy response body")
	rt := NewFaultRT(nil, RTRule{Mode: RTTorn, KeepBytes: 7})
	hc := &http.Client{Transport: rt}

	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatalf("torn responses should fail at body read, not round trip: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("reading a torn body: err=%v, want ErrUnexpectedEOF", err)
	}
	if string(data) != "a perfe" {
		t.Fatalf("torn body kept %q, want the first 7 bytes", data)
	}
}

func TestFaultRTLatency(t *testing.T) {
	ts, _ := countingServer(t, "ok")
	rt := NewFaultRT(nil, RTRule{Mode: RTLatency, Delay: 50 * time.Millisecond})
	hc := &http.Client{Transport: rt}
	start := time.Now()
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 45*time.Millisecond {
		t.Fatalf("latency injection took %v, want >= 50ms", d)
	}
}

func TestFaultRTBlackholeUntilReleased(t *testing.T) {
	ts, hits := countingServer(t, "ok")
	rt := NewFaultRT(nil, RTRule{Mode: RTBlackhole})
	hc := &http.Client{Transport: rt}

	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	if _, err := hc.Do(req); err == nil {
		t.Fatal("blackholed request returned")
	} else if !errors.Is(err, ErrRTBlackhole) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blackholed request failed with %v", err)
	}
	if hits.Load() != 0 {
		t.Fatal("blackholed request reached the server")
	}

	rt.Release()
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatalf("request after Release: %v", err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatalf("server hits after release: %d, want 1", hits.Load())
	}
}

func TestClientRetriesTransportFaults(t *testing.T) {
	ts, _ := countingServer(t, `{"service":"x"}`)
	rt := NewFaultRT(nil, RTRule{From: 0, Count: 2, Mode: RTFail})
	cl := NewClient(ts.URL, ClientOptions{
		RetryMax: 3, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		Transport: rt,
	})
	if _, err := cl.Version(context.Background()); err != nil {
		t.Fatalf("client did not retry through a 2-fault window: %v", err)
	}
	if rt.Requests() != 3 {
		t.Fatalf("requests=%d, want 3 (2 failures + 1 success)", rt.Requests())
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		io.WriteString(w, `{"service":"x"}`)
	}))
	defer ts.Close()
	cl := NewClient(ts.URL, ClientOptions{RetryMax: 2, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	start := time.Now()
	if _, err := cl.Version(context.Background()); err != nil {
		t.Fatalf("429 then 200 should succeed: %v", err)
	}
	if d := time.Since(start); d < 900*time.Millisecond {
		t.Fatalf("client retried after %v, want >= the 1s Retry-After hint", d)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
}

func TestClientDoesNotRetryCoherent4xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "no such job", http.StatusNotFound)
	}))
	defer ts.Close()
	cl := NewClient(ts.URL, ClientOptions{RetryMax: 3, BackoffBase: time.Millisecond})
	_, err := cl.Status(context.Background(), "nope")
	if err == nil {
		t.Fatal("404 surfaced as success")
	}
	if calls.Load() != 1 {
		t.Fatalf("client retried a 404 (%d calls)", calls.Load())
	}
	if _, err := cl.Checkpoint(context.Background(), "nope"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("checkpoint 404: err=%v, want ErrNoCheckpoint", err)
	}
}

func TestClientBreakerEjectsAndReadmits(t *testing.T) {
	ts, _ := countingServer(t, `{"service":"x"}`)
	rt := NewFaultRT(nil, RTRule{Mode: RTFail})
	cl := NewClient(ts.URL, ClientOptions{
		RetryMax: -1, BackoffBase: time.Millisecond,
		BreakerThreshold: 2, Probation: 80 * time.Millisecond,
		Transport: rt,
	})
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := cl.Version(ctx); err == nil {
			t.Fatalf("call %d through an all-fail transport succeeded", i)
		}
	}
	if cl.Available() {
		t.Fatal("breaker still admitting calls after threshold failures")
	}
	if _, err := cl.Version(ctx); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker: err=%v, want ErrBreakerOpen", err)
	}
	if cl.Ejections() != 1 {
		t.Fatalf("ejections=%d, want 1", cl.Ejections())
	}

	// Heal the network; after probation the half-open probe re-admits.
	rt.SetRules()
	time.Sleep(100 * time.Millisecond)
	if !cl.Available() {
		t.Fatal("breaker not half-open after probation")
	}
	if _, err := cl.Version(ctx); err != nil {
		t.Fatalf("probe call after probation: %v", err)
	}
	if !cl.Available() {
		t.Fatal("breaker did not close after a successful probe")
	}
	if cl.Ejections() != 1 {
		t.Fatalf("ejections=%d after recovery, want still 1", cl.Ejections())
	}
}

func TestClientBreakerReopensOnFailedProbe(t *testing.T) {
	ts, _ := countingServer(t, `{"service":"x"}`)
	rt := NewFaultRT(nil, RTRule{Mode: RTFail})
	cl := NewClient(ts.URL, ClientOptions{
		RetryMax: -1, BackoffBase: time.Millisecond,
		BreakerThreshold: 1, Probation: 50 * time.Millisecond,
		Transport: rt,
	})
	ctx := context.Background()
	if _, err := cl.Version(ctx); err == nil {
		t.Fatal("all-fail transport succeeded")
	}
	time.Sleep(60 * time.Millisecond)
	// Still broken: the probe fails and re-opens the breaker.
	if _, err := cl.Version(ctx); err == nil || errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("half-open probe: err=%v, want a transport failure", err)
	}
	if cl.Available() {
		t.Fatal("breaker closed after a failed probe")
	}
	// The breaker never closed, so this is still the original ejection.
	if cl.Ejections() != 1 {
		t.Fatalf("ejections=%d, want 1 (re-opening is not a new ejection)", cl.Ejections())
	}
}
