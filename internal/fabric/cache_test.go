package fabric

import (
	"bytes"
	"context"
	"testing"
	"time"

	"seqatpg/internal/campaign"
	"seqatpg/internal/rescache"
	"seqatpg/internal/service"
)

// TestFabricShardResultCache is the cross-campaign dedupe story at the
// fleet level: a second coordinator running the identical campaign
// against a shared result cache serves every shard from the cache —
// no jobs reach the workers — and merges to a result byte-identical
// to the first run's.
func TestFabricShardResultCache(t *testing.T) {
	cache, err := rescache.Open(rescache.Options{Dir: t.TempDir(), CapBytes: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	w0, w1 := startWorker(t, nil), startWorker(t, nil)
	spec := service.Spec{Name: "cache-fed", Netlist: benchText(t, 5, 9), MaxFaults: 8}
	const shards = 3

	run := func() *campaign.Result {
		t.Helper()
		coord, err := NewCoordinator(Options{
			Workers:   []string{w0.url(), w1.url()},
			Shards:    shards,
			Lease:     5 * time.Second,
			Heartbeat: 10 * time.Millisecond,
			Cache:     cache,
			Client:    chaosClientOptions(),
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := coord.Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		snap := coord.Metrics()
		t.Logf("run: %d shards cached, cache stats %+v", snap.ShardsCachedTotal, cache.Stats())
		if res2 := snap.ShardsCachedTotal; cache.Stats().Hits > 0 && res2 != shards {
			t.Fatalf("warm run served %d shards from the cache, want %d", res2, shards)
		}
		return res
	}

	cold := run()
	if got := cache.Stats(); got.Stored != shards {
		t.Fatalf("cold run stored %d shard results, want %d", got.Stored, shards)
	}
	jobsAfterCold := len(w0.srv.List()) + len(w1.srv.List())

	warm := run()
	if got := len(w0.srv.List()) + len(w1.srv.List()); got != jobsAfterCold {
		t.Fatalf("warm run dispatched %d jobs to the fleet, want 0", got-jobsAfterCold)
	}
	if got := cache.Stats(); got.Hits != shards {
		t.Fatalf("warm run hit %d entries, want %d", got.Hits, shards)
	}

	coldB, err := campaign.EncodeResult(cold)
	if err != nil {
		t.Fatal(err)
	}
	warmB, err := campaign.EncodeResult(warm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldB, warmB) {
		t.Fatal("cache-served federated result is not byte-identical to the cold run")
	}
	assertConverged(t, warm, reference(t, spec, shards))
}
