package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"seqatpg/internal/campaign"
	"seqatpg/internal/encode"
	"seqatpg/internal/fsm"
	"seqatpg/internal/ioguard"
	"seqatpg/internal/netlist"
	"seqatpg/internal/retime"
	"seqatpg/internal/service"
	"seqatpg/internal/synth"
)

// benchText synthesizes a small FSM circuit as .bench source, the
// shape of a real submission.
func benchText(t *testing.T, states int, seed int64) string {
	t.Helper()
	m, err := fsm.Generate(fsm.GenSpec{Name: "fab", Inputs: 3, Outputs: 2, States: states, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.Combined, Script: synth.Rugged, UseUnreachableDC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := netlist.WriteBench(&b, r.Circuit); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// worker is one fleet member: a real job service behind a real
// listener, killable mid-run.
type worker struct {
	srv *service.Server
	ts  *httptest.Server
}

func (w *worker) url() string  { return w.ts.URL }
func (w *worker) host() string { u, _ := url.Parse(w.ts.URL); return u.Host }

// kill closes the listener — in-flight and future requests fail — and
// abandons the service (its jobs keep running or die with the test).
func (w *worker) kill() { w.ts.CloseClientConnections(); w.ts.Close() }

// startWorker boots a worker. A non-nil fs throttles or faults its job
// store; chaos tests use an ioguard.FaultFS that delays checkpoint
// writes so shard jobs are reliably still running when chaos strikes.
func startWorker(t *testing.T, fs ioguard.FS) *worker {
	t.Helper()
	srv, err := service.New(t.TempDir(), service.Options{
		Workers:         2,
		CheckpointEvery: time.Millisecond,
		FS:              fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	w := &worker{srv: srv, ts: ts}
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	return w
}

// slowFS throttles checkpoint writes; combined with CheckpointEvery of
// a millisecond this paces the campaign at a few milliseconds per
// fault, long enough for the coordinator to observe (and sabotage) a
// running shard without making the test slow.
func slowFS() ioguard.FS {
	return ioguard.NewFaultFS(ioguard.OS, ioguard.Rule{
		PathContains: "checkpoint.json", Mode: ioguard.Delay, Delay: 25 * time.Millisecond,
	})
}

// testSpec is the chaos workload: a register-multiplied retimed
// circuit — the paper's hard case — truncated to a dozen faults. The
// retiming matters for timing, not just fidelity: each fault attack
// takes real milliseconds, so the periodic checkpointer (gated on
// wall-clock gaps) demonstrably fires mid-shard and the coordinator
// has checkpoints to cache before chaos strikes. A combinational
// toy circuit can finish a whole shard before the first gap elapses,
// which would make these tests vacuous.
func testSpec(t *testing.T) service.Spec {
	t.Helper()
	m, err := fsm.Generate(fsm.GenSpec{Name: "fab-re", Inputs: 3, Outputs: 2, States: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.Combined, Script: synth.Rugged, UseUnreachableDC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	re, err := retime.Backward(r.Circuit, netlist.DefaultLibrary(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := netlist.WriteBench(&b, re.Circuit); err != nil {
		t.Fatal(err)
	}
	return service.Spec{Name: "chaos", Netlist: b.String(), MaxFaults: 12}
}

// reference runs the same campaign single-node via RunSharded — the
// result every federated run must reproduce exactly.
func reference(t *testing.T, spec service.Spec, shards int) *campaign.Result {
	t.Helper()
	p, err := service.Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.RunSharded(context.Background(), p.Circuit, p.Faults, p.Campaign, shards)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// chaosClientOptions are tight timeouts so lease losses are detected
// in tens of milliseconds instead of tens of seconds.
func chaosClientOptions() ClientOptions {
	return ClientOptions{
		RetryMax:       1,
		RequestTimeout: 300 * time.Millisecond,
		BackoffBase:    5 * time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
		// Low enough that a killed or partitioned worker is ejected
		// after a few failed calls instead of soaking up re-dispatch
		// attempts; the lease machinery still drives the detection.
		BreakerThreshold: 6,
		Probation:        300 * time.Millisecond,
	}
}

// assertConverged checks the federated result carries exactly the
// single-node verdicts, stats, tests and crash records. Resume and
// degradation flags are excluded: chaos legitimately sets them (and
// the chaos tests assert them separately).
func assertConverged(t *testing.T, got, want *campaign.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Outcomes, want.Outcomes) {
		t.Fatal("federated outcomes diverge from the single-node run")
	}
	if !reflect.DeepEqual(got.Stats, want.Stats) {
		t.Fatalf("federated stats diverge from the single-node run:\n got %+v\nwant %+v", got.Stats, want.Stats)
	}
	if !reflect.DeepEqual(got.Tests, want.Tests) {
		t.Fatal("federated test sequences diverge from the single-node run")
	}
	if !reflect.DeepEqual(got.Crashes, want.Crashes) {
		t.Fatal("federated crash records diverge from the single-node run")
	}
	if got.Passes != want.Passes {
		t.Fatalf("federated passes %d, single-node %d", got.Passes, want.Passes)
	}
}

// TestFabricMergeShardCountInvariance is the merge determinism
// property: for K ∈ {1, 2, 3, 7} — including K greater than the fault
// count, which produces empty shards — the coordinator's merge of K
// wire-shipped shard results is byte-identical (EncodeResult bytes) to
// a single-node RunSharded over the same campaign.
func TestFabricMergeShardCountInvariance(t *testing.T) {
	spec := service.Spec{Name: "invariance", Netlist: benchText(t, 4, 7), MaxFaults: 6}
	w0, w1 := startWorker(t, nil), startWorker(t, nil)

	single := reference(t, spec, 1)
	for _, k := range []int{1, 2, 3, 7} {
		coord, err := NewCoordinator(Options{
			Workers:   []string{w0.url(), w1.url()},
			Shards:    k,
			Lease:     5 * time.Second,
			Heartbeat: 10 * time.Millisecond,
			Client:    chaosClientOptions(),
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := coord.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		want := reference(t, spec, k)
		gotB, err := campaign.EncodeResult(got)
		if err != nil {
			t.Fatal(err)
		}
		wantB, err := campaign.EncodeResult(want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotB, wantB) {
			t.Fatalf("K=%d: federated result is not byte-identical to single-node RunSharded", k)
		}
		// And shard-count invariance itself: every K reproduces K=1's
		// verdicts and stats (test *order* legitimately varies with the
		// partitioning; the byte check above pinned it for this K).
		if !reflect.DeepEqual(got.Outcomes, single.Outcomes) {
			t.Fatalf("K=%d: outcomes diverge from K=1", k)
		}
		if !reflect.DeepEqual(got.Stats, single.Stats) {
			t.Fatalf("K=%d: stats diverge from K=1", k)
		}
		if snap := coord.Metrics(); snap.RedispatchTotal != 0 || snap.LeasesActive != 0 {
			t.Fatalf("K=%d: healthy run reports redispatch=%d leases=%d", k, snap.RedispatchTotal, snap.LeasesActive)
		}
	}
}

// TestFabricChaosWorkerKillMidShard kills a worker while it holds a
// running shard whose checkpoint the coordinator has already cached.
// The lease expires, the shard re-dispatches to the surviving worker
// seeded with that checkpoint, and the merged result is exactly the
// single-node one — with Resumed proving the re-dispatch continued
// from the checkpoint rather than silently restarting.
func TestFabricChaosWorkerKillMidShard(t *testing.T) {
	spec := testSpec(t)
	w0 := startWorker(t, slowFS())
	w1 := startWorker(t, slowFS())

	var killOnce sync.Once
	killed := make(chan struct{})
	coord, err := NewCoordinator(Options{
		Workers:       []string{w0.url(), w1.url()},
		Shards:        2,
		Lease:         2 * time.Second,
		Heartbeat:     25 * time.Millisecond,
		MaxRedispatch: 10,
		Client:        chaosClientOptions(),
		Logf:          t.Logf,
		OnShardCheckpoint: func(shard int, wk string, data []byte) {
			if wk == w1.url() {
				killOnce.Do(func() {
					w1.kill()
					close(killed)
				})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	got, err := coord.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-killed:
	default:
		t.Fatal("chaos never fired: no checkpoint was cached from the victim worker")
	}

	assertConverged(t, got, reference(t, spec, 2))
	if !got.Resumed {
		t.Fatal("re-dispatched shard did not resume from the shipped checkpoint (silent full restart)")
	}
	snap := coord.Metrics()
	if snap.RedispatchTotal < 1 {
		t.Fatalf("redispatch_total=%d, want >= 1 after a worker kill", snap.RedispatchTotal)
	}
	if snap.LeasesActive != 0 {
		t.Fatalf("leases_active=%d after completion, want 0", snap.LeasesActive)
	}
}

// TestFabricChaosCoordinatorPartition blackholes the network between
// the coordinator and one worker mid-shard. The worker is healthy and
// keeps computing, but from the coordinator's side the lease expires
// and the shard moves; the duplicate execution on the partitioned
// worker must not corrupt the merged result.
func TestFabricChaosCoordinatorPartition(t *testing.T) {
	spec := testSpec(t)
	w0 := startWorker(t, slowFS())
	w1 := startWorker(t, slowFS())

	rt := NewFaultRT(nil)
	var partitionOnce sync.Once
	partitioned := make(chan struct{})
	clOpts := chaosClientOptions()
	clOpts.Transport = rt

	coord, err := NewCoordinator(Options{
		Workers:       []string{w0.url(), w1.url()},
		Shards:        2,
		Lease:         2 * time.Second,
		Heartbeat:     25 * time.Millisecond,
		MaxRedispatch: 10,
		Client:        clOpts,
		Logf:          t.Logf,
		OnShardCheckpoint: func(shard int, wk string, data []byte) {
			if wk == w1.url() {
				partitionOnce.Do(func() {
					rt.SetRules(RTRule{HostContains: w1.host(), Mode: RTBlackhole})
					close(partitioned)
				})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	got, err := coord.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-partitioned:
	default:
		t.Fatal("chaos never fired: no checkpoint was cached from the partitioned worker")
	}

	assertConverged(t, got, reference(t, spec, 2))
	if !got.Resumed {
		t.Fatal("shard moved off the partitioned worker without resuming its checkpoint")
	}
	if rt.Trips() == 0 {
		t.Fatal("partition rule never tripped")
	}
	if snap := coord.Metrics(); snap.RedispatchTotal < 1 {
		t.Fatalf("redispatch_total=%d, want >= 1 after a partition", snap.RedispatchTotal)
	}
}

// TestFabricChaosCoordinatorRestart stops the coordinator mid-campaign
// and starts a fresh one over the same durable state directory. The
// journal restores finished shards, cached checkpoints seed the rest,
// and the final result is exactly the single-node one.
func TestFabricChaosCoordinatorRestart(t *testing.T) {
	spec := testSpec(t)
	w0 := startWorker(t, slowFS())
	w1 := startWorker(t, slowFS())
	fleet := []string{w0.url(), w1.url()}
	dir := t.TempDir()

	opts := func() Options {
		return Options{
			Workers:       fleet,
			Shards:        3,
			Lease:         2 * time.Second,
			Heartbeat:     25 * time.Millisecond,
			MaxRedispatch: 10,
			Dir:           dir,
			Client:        chaosClientOptions(),
			Logf:          t.Logf,
		}
	}

	// First incarnation: die right after the first shard completes.
	ctx1, crash := context.WithCancel(context.Background())
	defer crash()
	o := opts()
	o.OnShardDone = func(shard int, wk string) { crash() }
	coord1, err := NewCoordinator(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord1.Run(ctx1, spec); err == nil {
		// Every shard finished before the cancellation propagated —
		// rare but legal; the restart below then restores all of them.
		t.Log("first coordinator finished before the injected crash")
	}

	// Second incarnation over the same state directory.
	coord2, err := NewCoordinator(opts())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	got, err := coord2.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	assertConverged(t, got, reference(t, spec, 3))
	snap := coord2.Metrics()
	if snap.ShardsRestoredTotal < 1 {
		t.Fatalf("shards_restored_total=%d, want >= 1 after a coordinator restart", snap.ShardsRestoredTotal)
	}
}

// TestFabricChaosRestartBeforeFirstShardDone crashes the coordinator
// after checkpoints were cached but before ANY shard finished — the
// journal has an empty done-list, yet the eagerly written fingerprint
// binding must let the restart ship the cached checkpoints so workers
// resume mid-shard instead of starting over.
func TestFabricChaosRestartBeforeFirstShardDone(t *testing.T) {
	spec := testSpec(t)
	w0 := startWorker(t, slowFS())
	w1 := startWorker(t, slowFS())
	fleet := []string{w0.url(), w1.url()}
	dir := t.TempDir()

	opts := func() Options {
		return Options{
			Workers:       fleet,
			Shards:        2,
			Lease:         2 * time.Second,
			Heartbeat:     25 * time.Millisecond,
			MaxRedispatch: 10,
			Dir:           dir,
			Client:        chaosClientOptions(),
			Logf:          t.Logf,
		}
	}

	// First incarnation: die as soon as one shard checkpoint is cached.
	ctx1, crash := context.WithCancel(context.Background())
	defer crash()
	o := opts()
	o.OnShardCheckpoint = func(shard int, wk string, data []byte) { crash() }
	coord1, err := NewCoordinator(o)
	if err != nil {
		t.Fatal(err)
	}
	_, firstErr := coord1.Run(ctx1, spec)
	if firstErr == nil {
		t.Log("first coordinator finished before the injected crash")
	}
	if coord1.Metrics().ShardsRestoredTotal != 0 {
		t.Fatal("first incarnation restored shards out of nowhere")
	}

	// Second incarnation: nothing is journal-restored (no shard was
	// done), but the run must converge and report a mid-shard resume,
	// which only happens if the cached checkpoints were shipped.
	coord2, err := NewCoordinator(opts())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	got, err := coord2.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	assertConverged(t, got, reference(t, spec, 2))
	if firstErr != nil && !got.Resumed {
		t.Fatal("restarted run is not marked resumed: cached checkpoints were not shipped")
	}
}

// stubVersionHandler mimics a worker whose result-wire format is from
// a different build.
func stubVersionHandler(wire int) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /version", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.VersionInfo{
			Service: "seqatpg", API: service.APIVersion,
			CheckpointFormat: campaign.CheckpointFormatVersion, ResultWire: wire,
		})
	})
	return mux
}

// TestFabricHandshakeRejectsIncompatibleWorker pins that a worker
// announcing a different wire format is ejected at the handshake, and
// that a fleet with no compatible worker fails fast.
func TestFabricHandshakeRejectsIncompatibleWorker(t *testing.T) {
	spec := service.Spec{Name: "hs", Netlist: benchText(t, 4, 7), MaxFaults: 4}
	good := startWorker(t, nil)
	bad := httptest.NewServer(stubVersionHandler(99))
	defer bad.Close()

	coord, err := NewCoordinator(Options{
		Workers:   []string{good.url(), bad.URL},
		Shards:    2,
		Heartbeat: 10 * time.Millisecond,
		Client:    chaosClientOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("a fleet with one good worker should still complete: %v", err)
	}
	assertConverged(t, got, reference(t, spec, 2))
	if snap := coord.Metrics(); len(snap.WorkerInflight) != 1 {
		t.Fatalf("incompatible worker still in the fleet: %+v", snap.WorkerInflight)
	}

	allBad, err := NewCoordinator(Options{
		Workers: []string{bad.URL},
		Shards:  1,
		Client:  chaosClientOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := allBad.Run(context.Background(), spec); err == nil {
		t.Fatal("an all-incompatible fleet completed a campaign")
	}
}

// TestFabricMetricsHandler scrapes the coordinator's Prometheus
// endpoint after a healthy run.
func TestFabricMetricsHandler(t *testing.T) {
	spec := service.Spec{Name: "metrics", Netlist: benchText(t, 4, 7), MaxFaults: 4}
	w0 := startWorker(t, nil)
	coord, err := NewCoordinator(Options{
		Workers:   []string{w0.url()},
		Shards:    2,
		Heartbeat: 10 * time.Millisecond,
		Client:    chaosClientOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	coord.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"atpg_fabric_leases_active 0",
		"atpg_fabric_redispatch_total 0",
		"atpg_fabric_worker_ejected_total 0",
		"atpg_fabric_shards_restored_total 0",
		"atpg_fabric_worker_inflight{worker=\"" + w0.url() + "\"} 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
}
