package fabric

import (
	"bytes"
	"testing"

	"seqatpg/internal/atpg"
	"seqatpg/internal/campaign"
	"seqatpg/internal/sim"
)

// FuzzFabricWire throws arbitrary bytes at the shard-result decoder —
// the exact surface a torn or hostile worker response reaches — and
// checks the accept/reject contract: anything DecodeResult accepts
// must re-encode canonically (encode(decode(x)) is a fixed point of
// decode), and nothing may panic.
func FuzzFabricWire(f *testing.F) {
	seed := &campaign.Result{
		Outcomes: []atpg.Outcome{atpg.Detected, atpg.Redundant, atpg.Aborted, atpg.Crashed, atpg.Detected},
		Tests: [][][]sim.Val{
			{{sim.V0, sim.V1, sim.VX}, {sim.V1, sim.V1, sim.V0}},
			{{sim.VX, sim.VX, sim.VX}},
		},
		Stats: atpg.Stats{
			Total: 5, Detected: 2, Redundant: 1, Aborted: 1, Crashed: 1,
			Effort: 1234, Backtracks: 9,
			StatesTraversed: map[uint64]bool{1: true, 42: true},
		},
		Passes: 2,
	}
	valid, err := campaign.EncodeResult(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(campaignInterruptedSeed(f))
	f.Add([]byte(`{"version":1,"outcomes":"","tests":[],"stats":{"total":0}}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`not json at all`))
	f.Add(valid[:len(valid)/2]) // torn mid-payload

	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := campaign.DecodeResult(data)
		if err != nil {
			return
		}
		re, err := campaign.EncodeResult(res)
		if err != nil {
			t.Fatalf("decoded result does not re-encode: %v", err)
		}
		res2, err := campaign.DecodeResult(re)
		if err != nil {
			t.Fatalf("canonical re-encoding rejected by its own decoder: %v", err)
		}
		re2, err := campaign.EncodeResult(res2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("encode(decode(x)) is not a fixed point")
		}
	})
}

// campaignInterruptedSeed exercises the interrupted-payload branch,
// whose verdict counters are allowed to disagree with the outcomes.
func campaignInterruptedSeed(f *testing.F) []byte {
	f.Helper()
	res := &campaign.Result{
		Outcomes:    []atpg.Outcome{atpg.Aborted, atpg.Aborted},
		Stats:       atpg.Stats{Total: 2, Detected: 1, Aborted: 1, StatesTraversed: map[uint64]bool{}},
		Interrupted: true,
		Resumed:     true,
	}
	data, err := campaign.EncodeResult(res)
	if err != nil {
		f.Fatal(err)
	}
	return data
}
