package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"seqatpg/internal/campaign"
	"seqatpg/internal/fault"
	"seqatpg/internal/ioguard"
	"seqatpg/internal/rescache"
	"seqatpg/internal/service"
)

// Coordinator errors.
var (
	// ErrNoWorkers reports that the fleet has no compatible worker left
	// to dispatch to.
	ErrNoWorkers = errors.New("fabric: no compatible worker available")
	// ErrShardExhausted reports a shard that burned through its
	// re-dispatch budget without completing.
	ErrShardExhausted = errors.New("fabric: shard exhausted its re-dispatch budget")
)

// journalVersion guards the coordinator's durable state format.
const journalVersion = 1

// Options configures a Coordinator. Workers is the only required
// field.
type Options struct {
	// Workers lists the fleet's base URLs.
	Workers []string
	// Shards is the campaign partition count; zero selects
	// len(Workers). More shards than workers is fine (workers run
	// several shard jobs); more shards than faults yields empty shards,
	// which are merged without dispatching anything.
	Shards int
	// Balance packs shards by predicted per-fault search cost
	// (service.PlanShards) instead of round-robin by index, so no
	// single shard collects the predicted-hard faults and becomes the
	// straggler that sets the campaign makespan. Placement only moves
	// faults between shards; the merged verdicts are identical either
	// way. Workers derive the same partition independently from the
	// Balanced flag on their shard selector.
	Balance bool
	// Lease is how long a dispatched shard may go without observable
	// progress before its lease is revoked and the shard re-dispatched;
	// zero selects 30s.
	Lease time.Duration
	// Heartbeat is the status-poll interval that renews leases; zero
	// selects Lease/5 (min 50ms).
	Heartbeat time.Duration
	// MaxRedispatch bounds how many times one shard may be dispatched
	// (first dispatch included); zero selects 8.
	MaxRedispatch int
	// Dir, when set, makes coordinator state durable: fetched shard
	// checkpoints, finished shard results and the run journal live
	// there, so a restarted coordinator resumes instead of starting
	// over.
	Dir string
	// Client tunes the per-worker retrying client and breaker.
	Client ClientOptions
	// FsimWorkers sizes the final merge fault-simulation pass; zero
	// selects 1 (the outcome is worker-count-invariant either way).
	FsimWorkers int
	// Logf receives coordinator progress lines; nil discards them.
	Logf func(format string, args ...any)
	// FS is the filesystem seam for Dir (fault injection in tests);
	// nil selects the real one.
	FS ioguard.FS
	// Cache, when set, memoizes finished shard wire results by content
	// digest. Unlike the journal (bound to one campaign fingerprint and
	// shard count), the cache is cross-campaign: a repeated submission,
	// or a different shard count whose round-robin sublists happen to
	// align, skips every shard whose digest is already stored.
	Cache *rescache.Cache
	// OnShardCheckpoint, if set, is called after a shard checkpoint has
	// been fetched, validated and cached. Chaos tests hang precise
	// kill-points off it.
	OnShardCheckpoint func(shard int, worker string, data []byte)
	// OnShardDone, if set, is called when a shard's result has been
	// fetched and cached.
	OnShardDone func(shard int, worker string)
}

func (o Options) withDefaults() Options {
	if o.Shards == 0 {
		o.Shards = len(o.Workers)
	}
	if o.Lease <= 0 {
		o.Lease = 30 * time.Second
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = o.Lease / 5
		if o.Heartbeat < 50*time.Millisecond {
			o.Heartbeat = 50 * time.Millisecond
		}
	}
	if o.MaxRedispatch == 0 {
		o.MaxRedispatch = 8
	}
	if o.FsimWorkers <= 0 {
		o.FsimWorkers = 1
	}
	if o.FS == nil {
		o.FS = ioguard.OS
	}
	return o
}

// Coordinator federates one campaign across a worker fleet: it splits
// the fault universe into the same deterministic shards RunSharded
// uses, dispatches each shard as a job, holds it under a heartbeat-
// renewed lease, re-dispatches lost shards from their last durable
// checkpoint, and merges the shard results into a Result identical to
// a single-node sharded run.
type Coordinator struct {
	opts    Options
	clients []*Client
	logf    func(string, ...any)

	mu       sync.Mutex
	ckpts    map[int][]byte // shard -> newest validated checkpoint bytes
	restored map[int]*campaign.Result
	journal  journalFile

	pickSeq        atomic.Uint64
	leasesActive   atomic.Int64
	redispatch     atomic.Int64
	shardsRestored atomic.Int64
	shardsCached   atomic.Int64
	inflight       map[string]*atomic.Int64 // worker URL -> running shard jobs

	// Predicted per-shard load spread of the current placement, in
	// (rounded) predicted gate evaluations; set once per Run when
	// Balance is on.
	predShardMax atomic.Int64
	predShardMin atomic.Int64
	predTotal    atomic.Int64
}

// journalFile is the durable run journal: which campaign this is (so a
// restarted coordinator refuses to mix state from a different one) and
// which shards have already finished. Balanced records the placement
// mode: a balanced and a round-robin run of the same campaign produce
// different shard sublists, so their journals must not mix either.
type journalFile struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	Shards      int    `json:"shards"`
	Balanced    bool   `json:"balanced,omitempty"`
	Done        []int  `json:"done"`
}

// NewCoordinator validates opts and builds the fleet clients.
func NewCoordinator(opts Options) (*Coordinator, error) {
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("fabric: coordinator needs at least one worker URL")
	}
	opts = opts.withDefaults()
	if opts.Shards < 1 {
		return nil, fmt.Errorf("fabric: %d shards, want >= 1", opts.Shards)
	}
	c := &Coordinator{
		opts:     opts,
		logf:     opts.Logf,
		ckpts:    map[int][]byte{},
		restored: map[int]*campaign.Result{},
		inflight: map[string]*atomic.Int64{},
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	seen := map[string]bool{}
	for i, w := range opts.Workers {
		cl := NewClient(w, opts.Client)
		if seen[cl.URL()] {
			return nil, fmt.Errorf("fabric: duplicate worker URL %s", cl.URL())
		}
		seen[cl.URL()] = true
		// Distinct jitter streams per worker keep retry storms from
		// synchronizing across the fleet.
		if opts.Client.JitterSeed == 0 {
			clOpts := opts.Client
			clOpts.JitterSeed = int64(i + 1)
			cl = NewClient(w, clOpts)
		}
		c.clients = append(c.clients, cl)
		c.inflight[cl.URL()] = &atomic.Int64{}
	}
	return c, nil
}

// Run executes the campaign described by spec across the fleet and
// returns the merged global result. The spec must describe the whole
// campaign (no shard selector); the coordinator derives the per-shard
// jobs itself.
func (c *Coordinator) Run(ctx context.Context, spec service.Spec) (*campaign.Result, error) {
	if spec.Shard != nil {
		return nil, fmt.Errorf("fabric: spec already carries a shard selector")
	}
	if len(spec.Checkpoint) != 0 {
		return nil, fmt.Errorf("fabric: spec-level checkpoints are managed by the coordinator")
	}
	spec.Shards = 0

	// The coordinator prepares the campaign locally too: it needs the
	// fault universe for partitioning and merging, the circuit for the
	// final fault-simulation pass, and the fingerprint to bind durable
	// state to this exact campaign.
	p, err := service.Prepare(spec)
	if err != nil {
		return nil, err
	}
	ccfg := campaign.NormalizeForSharding(p.Campaign)
	fp := campaign.Fingerprint(p.Circuit, ccfg, p.Faults)
	var idxs [][]int
	if c.opts.Balance {
		var scores []float64
		idxs, scores, err = service.PlanShards(p.Circuit, p.Faults, c.opts.Shards)
		if err != nil {
			return nil, fmt.Errorf("fabric: balanced placement: %w", err)
		}
		c.recordPlacement(idxs, scores)
	} else {
		idxs = campaign.ShardIndices(len(p.Faults), c.opts.Shards)
	}

	if err := c.handshake(ctx); err != nil {
		return nil, err
	}
	if err := c.loadJournal(fp); err != nil {
		return nil, err
	}

	digests := c.shardDigests(p, ccfg, idxs)
	results := make([]*campaign.Result, c.opts.Shards)
	errs := make([]error, c.opts.Shards)
	var wg sync.WaitGroup
	for k := 0; k < c.opts.Shards; k++ {
		if len(idxs[k]) == 0 {
			continue
		}
		if res := c.restoredResult(k, len(idxs[k])); res != nil {
			c.logf("fabric: shard %d/%d restored from journal", k, c.opts.Shards)
			results[k] = res
			continue
		}
		if res := c.cachedShardResult(digests[k], len(idxs[k])); res != nil {
			c.logf("fabric: shard %d/%d served from the result cache", k, c.opts.Shards)
			results[k] = res
			c.recordDone(k, res)
			continue
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			results[k], errs[k] = c.runShard(ctx, spec, k, len(idxs[k]))
			if errs[k] == nil && results[k] != nil {
				c.storeShardResult(digests[k], results[k])
			}
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fabric: shard %d/%d: %w", k, c.opts.Shards, err)
		}
	}

	merged := campaign.MergeShardResults(p.Faults, idxs, results)
	if !merged.Interrupted {
		if err := campaign.UpgradeAborted(p.Circuit, p.Faults, merged, c.opts.FsimWorkers); err != nil {
			return nil, fmt.Errorf("fabric: merge fault simulation: %w", err)
		}
	}
	return merged, nil
}

// recordPlacement publishes the predicted load spread of a balanced
// placement — how evenly the packing spread predicted evaluations over
// the shards — and logs it for operators comparing against the
// straggler shards a round-robin split would produce.
func (c *Coordinator) recordPlacement(idxs [][]int, scores []float64) {
	minLoad, maxLoad, total := math.Inf(1), 0.0, 0.0
	for _, ix := range idxs {
		var load float64
		for _, gi := range ix {
			load += scores[gi]
		}
		total += load
		if load > maxLoad {
			maxLoad = load
		}
		if load < minLoad {
			minLoad = load
		}
	}
	if minLoad > maxLoad {
		minLoad = maxLoad
	}
	c.predShardMax.Store(satInt64(maxLoad))
	c.predShardMin.Store(satInt64(minLoad))
	c.predTotal.Store(satInt64(total))
	c.logf("fabric: balanced placement over %d shards: predicted evals min %d / max %d / total %d",
		len(idxs), satInt64(minLoad), satInt64(maxLoad), satInt64(total))
}

// satInt64 rounds a non-negative float to int64, saturating instead of
// relying on the implementation-defined overflow conversion.
func satInt64(v float64) int64 {
	if v >= float64(math.MaxInt64) {
		return math.MaxInt64
	}
	if v < 0 {
		return 0
	}
	return int64(v)
}

// shardDigests derives each shard's content address from its exact
// fault sublist and the normalized config — the same inputs the shard
// job computes from, so the digest is shard-count-agnostic: any
// partition producing the same sublist shares the cache entry.
func (c *Coordinator) shardDigests(p *service.Prepared, ccfg campaign.Config, idxs [][]int) []string {
	digests := make([]string, len(idxs))
	if c.opts.Cache == nil {
		return digests
	}
	for k, ix := range idxs {
		if len(ix) == 0 {
			continue
		}
		sub := make([]fault.Fault, 0, len(ix))
		for _, gi := range ix {
			sub = append(sub, p.Faults[gi])
		}
		digests[k] = rescache.Digest(p.Circuit, ccfg, sub, "wire-shard")
	}
	return digests
}

// cachedShardResult consults the cross-campaign result cache for a
// finished shard's wire result. Anything unusable — undecodable
// bytes, wrong fault count, an interrupted run — is treated as a
// plain miss; the shard is then dispatched normally.
func (c *Coordinator) cachedShardResult(digest string, wantFaults int) *campaign.Result {
	if c.opts.Cache == nil || digest == "" {
		return nil
	}
	files, ok := c.opts.Cache.Get(digest)
	if !ok {
		return nil
	}
	res, err := campaign.DecodeResult(files["merge.json"])
	if err != nil || len(res.Outcomes) != wantFaults || res.Interrupted {
		c.logf("fabric: ignoring unusable cached shard result %.12s", digest)
		return nil
	}
	c.shardsCached.Add(1)
	return res
}

// storeShardResult publishes a pristine finished shard wire result to
// the cross-campaign cache. Resumed, degraded and interrupted results
// are skipped: they reach the same verdicts but are not the canonical
// bytes of a cold shard run.
func (c *Coordinator) storeShardResult(digest string, res *campaign.Result) {
	if c.opts.Cache == nil || digest == "" || res.Resumed || res.Degraded || res.Interrupted {
		return
	}
	data, err := campaign.EncodeResult(res)
	if err != nil {
		c.logf("fabric: encoding shard result for the cache failed: %v", err)
		return
	}
	if err := c.opts.Cache.Put(digest, map[string][]byte{"merge.json": data}); err != nil {
		c.logf("fabric: caching shard result failed: %v", err)
	}
}

// handshake verifies every worker speaks this coordinator's formats
// and drops the ones that do not. Unreachable workers stay in the
// fleet (they may come back); incompatible ones are ejected outright —
// mixing checkpoint or wire formats corrupts results, downtime only
// delays them.
func (c *Coordinator) handshake(ctx context.Context) error {
	var kept []*Client
	for _, cl := range c.clients {
		v, err := cl.Version(ctx)
		if err != nil {
			c.logf("fabric: worker %s unreachable during handshake (keeping): %v", cl.URL(), err)
			kept = append(kept, cl)
			continue
		}
		if v.Service != "seqatpg" || v.API != service.APIVersion ||
			v.CheckpointFormat != campaign.CheckpointFormatVersion ||
			v.ResultWire != campaign.ResultWireVersion {
			c.logf("fabric: worker %s is incompatible (service=%q api=%d ckpt=%d wire=%d): %v",
				cl.URL(), v.Service, v.API, v.CheckpointFormat, v.ResultWire, ErrIncompatible)
			continue
		}
		kept = append(kept, cl)
	}
	if len(kept) == 0 {
		return fmt.Errorf("%w: all %d workers failed the version handshake", ErrNoWorkers, len(c.clients))
	}
	if len(kept) < len(c.clients) {
		c.logf("fabric: fleet reduced to %d/%d workers by version handshake", len(kept), len(c.clients))
	}
	c.clients = kept
	return nil
}

// runShard drives one shard to completion: dispatch, lease-watch,
// re-dispatch on loss, bounded by MaxRedispatch.
func (c *Coordinator) runShard(ctx context.Context, base service.Spec, k, wantFaults int) (*campaign.Result, error) {
	avoid := ""
	for attempt := 0; attempt < c.opts.MaxRedispatch; attempt++ {
		if attempt > 0 {
			c.redispatch.Add(1)
			c.logf("fabric: shard %d re-dispatch %d/%d", k, attempt, c.opts.MaxRedispatch-1)
		}
		cl, err := c.pickWorker(ctx, avoid)
		if err != nil {
			return nil, err
		}
		res, lost, err := c.dispatchOnce(ctx, cl, base, k, wantFaults)
		if err != nil && !lost {
			return nil, err
		}
		if res != nil {
			return res, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		avoid = cl.URL()
	}
	return nil, fmt.Errorf("%w after %d dispatches", ErrShardExhausted, c.opts.MaxRedispatch)
}

// pickWorker selects the least-loaded worker whose breaker admits
// calls, preferring any worker other than `avoid` (the one that just
// lost the shard's lease). If every breaker is open it waits a
// heartbeat and re-scans, giving probation a chance to half-open.
func (c *Coordinator) pickWorker(ctx context.Context, avoid string) (*Client, error) {
	deadline := time.Now().Add(c.opts.Lease + c.opts.Client.Probation + time.Second)
	for {
		// The scan starts at a rotating offset so equally-loaded workers
		// are taken round-robin: concurrent shard dispatches spread over
		// the fleet instead of all resolving the tie to worker 0.
		start := int(c.pickSeq.Add(1)-1) % len(c.clients)
		var best *Client
		bestLoad := int64(0)
		for pass := 0; pass < 2 && best == nil; pass++ {
			for i := range c.clients {
				cl := c.clients[(start+i)%len(c.clients)]
				if pass == 0 && cl.URL() == avoid && len(c.clients) > 1 {
					continue
				}
				if !cl.Available() {
					continue
				}
				load := c.inflight[cl.URL()].Load()
				if best == nil || load < bestLoad {
					best, bestLoad = cl, load
				}
			}
		}
		if best != nil {
			return best, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(c.opts.Heartbeat):
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("%w: every breaker open past probation", ErrNoWorkers)
		}
	}
}

// dispatchOnce submits shard k to one worker and watches it under a
// lease. It returns (result, false, nil) on completion, (nil, true, _)
// when the lease was lost and the shard should be re-dispatched, and a
// hard error only for conditions re-dispatching cannot fix.
func (c *Coordinator) dispatchOnce(ctx context.Context, cl *Client, base service.Spec, k, wantFaults int) (*campaign.Result, bool, error) {
	spec := base
	spec.Shard = &service.ShardSel{Index: k, Count: c.opts.Shards, Balanced: c.opts.Balance}
	if spec.Name == "" {
		spec.Name = "fabric"
	}
	spec.Name = fmt.Sprintf("%s-shard%d-of-%d", spec.Name, k, c.opts.Shards)
	spec.Checkpoint = c.cachedCheckpoint(k)

	id, err := cl.Submit(ctx, spec)
	if err != nil {
		c.logf("fabric: shard %d: submit to %s failed: %v", k, cl.URL(), err)
		return nil, true, err
	}
	c.logf("fabric: shard %d dispatched to %s as %s (%d bytes of checkpoint)", k, cl.URL(), id, len(spec.Checkpoint))

	inf := c.inflight[cl.URL()]
	inf.Add(1)
	c.leasesActive.Add(1)
	defer func() {
		inf.Add(-1)
		c.leasesActive.Add(-1)
	}()

	lease := time.Now().Add(c.opts.Lease)
	var lastState service.State
	var lastProgress int64 = -1
	for {
		select {
		case <-ctx.Done():
			c.cancelJob(cl, id)
			return nil, false, ctx.Err()
		case <-time.After(c.opts.Heartbeat):
		}

		st, err := cl.Status(ctx, id)
		if err != nil {
			if ctx.Err() != nil {
				c.cancelJob(cl, id)
				return nil, false, ctx.Err()
			}
			c.logf("fabric: shard %d: heartbeat to %s failed: %v", k, cl.URL(), err)
			if time.Now().After(lease) {
				c.logf("fabric: shard %d: lease expired on unreachable %s, re-dispatching", k, cl.URL())
				c.cancelJob(cl, id)
				return nil, true, err
			}
			continue
		}

		// Renew the lease only on observable liveness: a state change,
		// forward progress, or honest queueing. A worker that answers
		// polls but whose job is wedged still loses the lease.
		progress := st.Attempts + st.CheckpointWrites + int64(st.Pass)
		if st.State != lastState || progress > lastProgress || st.State == service.Queued {
			lease = time.Now().Add(c.opts.Lease)
			lastState, lastProgress = st.State, progress
		}

		if st.State == service.Running {
			c.fetchCheckpoint(ctx, cl, id, k)
		}

		switch {
		case st.State == service.Done:
			res, err := cl.ShardResult(ctx, id)
			if err != nil {
				c.logf("fabric: shard %d: result fetch from %s failed: %v", k, cl.URL(), err)
				return nil, true, err
			}
			if len(res.Outcomes) != wantFaults {
				return nil, false, fmt.Errorf("fabric: shard %d result covers %d faults, want %d", k, len(res.Outcomes), wantFaults)
			}
			c.recordDone(k, res)
			if c.opts.OnShardDone != nil {
				c.opts.OnShardDone(k, cl.URL())
			}
			c.logf("fabric: shard %d done on %s", k, cl.URL())
			return res, false, nil
		case st.State == service.Failed, st.State == service.Cancelled:
			c.logf("fabric: shard %d %s on %s: %s", k, st.State, cl.URL(), st.Error)
			return nil, true, fmt.Errorf("fabric: shard %d %s on worker: %s", k, st.State, st.Error)
		}

		if time.Now().After(lease) {
			c.logf("fabric: shard %d: lease expired (job %s stuck in %s on %s), re-dispatching", k, id, st.State, cl.URL())
			c.cancelJob(cl, id)
			return nil, true, fmt.Errorf("fabric: shard %d lease expired", k)
		}
	}
}

// cancelJob is the best-effort cleanup after a lease loss or
// interruption; a partitioned worker will simply never hear it.
func (c *Coordinator) cancelJob(cl *Client, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.Client.withDefaults().RequestTimeout)
	defer cancel()
	_ = cl.Cancel(ctx, id)
}

// fetchCheckpoint pulls the shard's newest checkpoint, validates its
// CRC, and caches it (durably when Dir is set). Invalid or stale bytes
// are dropped: a torn response must never poison the re-dispatch seed.
func (c *Coordinator) fetchCheckpoint(ctx context.Context, cl *Client, id string, k int) {
	data, err := cl.Checkpoint(ctx, id)
	if err != nil {
		if !errors.Is(err, ErrNoCheckpoint) && ctx.Err() == nil {
			c.logf("fabric: shard %d: checkpoint fetch from %s failed: %v", k, cl.URL(), err)
		}
		return
	}
	if err := campaign.CheckCheckpointBytes(data); err != nil {
		c.logf("fabric: shard %d: discarding invalid checkpoint from %s: %v", k, cl.URL(), err)
		return
	}
	c.mu.Lock()
	changed := string(c.ckpts[k]) != string(data)
	if changed {
		c.ckpts[k] = data
	}
	c.mu.Unlock()
	if !changed {
		return
	}
	if c.opts.Dir != "" {
		if err := ioguard.WriteFileDurable(c.opts.FS, c.shardCkptPath(k), data, 0o644); err != nil {
			c.logf("fabric: shard %d: persisting checkpoint failed: %v", k, err)
		}
	}
	if c.opts.OnShardCheckpoint != nil {
		c.opts.OnShardCheckpoint(k, cl.URL(), data)
	}
}

func (c *Coordinator) cachedCheckpoint(k int) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ckpts[k]
}

func (c *Coordinator) shardCkptPath(k int) string {
	return filepath.Join(c.opts.Dir, fmt.Sprintf("shard%d.ckpt", k))
}

func (c *Coordinator) shardResultPath(k int) string {
	return filepath.Join(c.opts.Dir, fmt.Sprintf("shard%d.result.json", k))
}

func (c *Coordinator) journalPath() string {
	return filepath.Join(c.opts.Dir, "fabric.json")
}

// loadJournal binds durable coordinator state to this campaign's
// fingerprint. Matching state restores finished shard results and
// cached checkpoints; state from a different campaign or shard count
// is ignored (and will be overwritten as this run progresses).
func (c *Coordinator) loadJournal(fp string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal = journalFile{Version: journalVersion, Fingerprint: fp, Shards: c.opts.Shards, Balanced: c.opts.Balance}
	if c.opts.Dir == "" {
		return nil
	}
	if err := c.opts.FS.MkdirAll(c.opts.Dir, 0o755); err != nil {
		return fmt.Errorf("fabric: coordinator dir: %w", err)
	}
	data, err := c.opts.FS.ReadFile(c.journalPath())
	if err != nil {
		c.startFreshLocked()
		return nil
	}
	var j journalFile
	if err := json.Unmarshal(data, &j); err != nil || j.Version != journalVersion {
		c.logf("fabric: ignoring unreadable coordinator journal: %v", err)
		c.startFreshLocked()
		return nil
	}
	if j.Fingerprint != fp || j.Shards != c.opts.Shards || j.Balanced != c.opts.Balance {
		c.logf("fabric: journal belongs to a different campaign (or shard count/placement), starting fresh")
		c.startFreshLocked()
		return nil
	}
	for _, k := range j.Done {
		data, err := c.opts.FS.ReadFile(c.shardResultPath(k))
		if err != nil {
			c.logf("fabric: journal marks shard %d done but its result is unreadable: %v", k, err)
			continue
		}
		res, err := campaign.DecodeResult(data)
		if err != nil {
			c.logf("fabric: journal shard %d result is corrupt, re-dispatching: %v", k, err)
			continue
		}
		c.restored[k] = res
		c.journal.Done = append(c.journal.Done, k)
	}
	// Cached checkpoints seed re-dispatch of the unfinished shards.
	for k := 0; k < c.opts.Shards; k++ {
		if c.restored[k] != nil {
			continue
		}
		if data, err := c.opts.FS.ReadFile(c.shardCkptPath(k)); err == nil {
			if campaign.CheckCheckpointBytes(data) == nil {
				c.ckpts[k] = data
			}
		}
	}
	return nil
}

// startFreshLocked scrubs shard state left by a different campaign and
// writes this run's journal immediately, so checkpoints cached before
// the first shard finishes are still fingerprint-bound on restart.
// c.mu held.
func (c *Coordinator) startFreshLocked() {
	for _, pat := range []string{"shard*.ckpt", "shard*.result.json"} {
		stale, _ := c.opts.FS.Glob(filepath.Join(c.opts.Dir, pat))
		for _, p := range stale {
			_ = c.opts.FS.Remove(p)
		}
	}
	c.persistJournalLocked()
}

// restoredResult hands back a journal-restored shard result, guarding
// against a stale journal whose shard sizes no longer match.
func (c *Coordinator) restoredResult(k, wantFaults int) *campaign.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	res := c.restored[k]
	if res == nil || len(res.Outcomes) != wantFaults {
		return nil
	}
	c.shardsRestored.Add(1)
	return res
}

// recordDone persists a finished shard's result and journals it, so a
// restarted coordinator re-dispatches only the unfinished shards.
func (c *Coordinator) recordDone(k int, res *campaign.Result) {
	if c.opts.Dir == "" {
		return
	}
	data, err := campaign.EncodeResult(res)
	if err != nil {
		c.logf("fabric: shard %d: encoding result for the journal failed: %v", k, err)
		return
	}
	if err := ioguard.WriteFileDurable(c.opts.FS, c.shardResultPath(k), data, 0o644); err != nil {
		c.logf("fabric: shard %d: persisting result failed: %v", k, err)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range c.journal.Done {
		if d == k {
			return
		}
	}
	c.journal.Done = append(c.journal.Done, k)
	sort.Ints(c.journal.Done)
	c.persistJournalLocked()
}

// persistJournalLocked writes the journal file durably; c.mu held.
func (c *Coordinator) persistJournalLocked() {
	jdata, err := json.MarshalIndent(c.journal, "", " ")
	if err == nil {
		err = ioguard.WriteFileDurable(c.opts.FS, c.journalPath(), append(jdata, '\n'), 0o644)
	}
	if err != nil {
		c.logf("fabric: journal write failed: %v", err)
	}
}
