// Package fabric federates ATPG campaigns across a fleet of job-service
// workers: a coordinator splits a campaign into the same deterministic
// shards campaign.RunSharded uses, dispatches them as jobs over the
// service JSON API, holds each dispatched shard under a heartbeat-
// renewed lease, re-dispatches lost shards from their last durable
// checkpoint, and merges the per-shard results into a global Result
// byte-identical to a single-node sharded run.
//
// Robustness is the design center, so the package also ships its own
// chaos instrumentation: FaultRT mirrors ioguard.FaultFS at the
// network layer — a fault-injecting http.RoundTripper that can fail
// the Nth request, add latency, tear response bodies, or blackhole a
// worker until released — which makes multi-node failure scenarios
// scripted and deterministic instead of racy.
package fabric

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Injection errors. ErrRTInjected is the generic scripted failure;
// ErrRTBlackhole reports a request that sat in a partition until its
// context gave up.
var (
	ErrRTInjected  = errors.New("fabric: injected network fault")
	ErrRTBlackhole = errors.New("fabric: request blackholed (partition)")
)

// RTMode selects what a matching RTRule does to the request.
type RTMode int

const (
	// RTFail fails the round trip without sending anything.
	RTFail RTMode = iota
	// RTLatency sleeps Rule.Delay, then sends normally.
	RTLatency
	// RTTorn performs the request but truncates the response body, the
	// network equivalent of a torn write: the client sees a prefix and
	// then an unexpected EOF.
	RTTorn
	// RTBlackhole parks the request until the transport is Released or
	// the request's context expires — a network partition. Requests
	// issued after Release pass through normally.
	RTBlackhole
)

func (m RTMode) String() string {
	switch m {
	case RTFail:
		return "fail"
	case RTLatency:
		return "latency"
	case RTTorn:
		return "torn"
	case RTBlackhole:
		return "blackhole"
	}
	return fmt.Sprintf("rtmode(%d)", int(m))
}

// RTRule scripts one network fault: it matches requests by method,
// host substring, path substring and position in the request sequence,
// and injects Mode. Rules are evaluated in order; the first match
// fires.
type RTRule struct {
	// Method restricts the rule to one HTTP method ("GET", "POST");
	// empty matches every method.
	Method string
	// HostContains restricts the rule to requests whose target host
	// contains this substring — how a test partitions one worker out of
	// a fleet. Empty matches every host.
	HostContains string
	// PathContains restricts the rule to request paths containing this
	// substring. Empty matches every path.
	PathContains string
	// From and Count bound the firing window in request indices: the
	// rule fires on matching requests whose index is in
	// [From, From+Count). Count <= 0 leaves the window open-ended.
	From, Count int
	// Mode is the injected behavior; the zero value is RTFail.
	Mode RTMode
	// Err overrides the returned error for RTFail; nil selects
	// ErrRTInjected.
	Err error
	// KeepBytes is how much of a torn response body the client sees:
	// 0 means half, negative means nothing.
	KeepBytes int
	// Delay is the sleep for RTLatency.
	Delay time.Duration
}

// FaultRT wraps an inner http.RoundTripper and injects scripted
// network faults, counting requests so schedules are deterministic.
// The rule set can be swapped mid-run (SetRules) to start a partition
// at a precise moment, and Release heals every blackhole at once.
type FaultRT struct {
	inner http.RoundTripper

	mu       sync.Mutex
	rules    []RTRule
	reqs     int
	trips    int
	released chan struct{}
	healed   bool
	onTrip   func(req int, r RTRule)
}

// NewFaultRT wraps inner (nil selects http.DefaultTransport) with the
// given fault schedule. With no rules it is a transparent pass-through
// that counts requests.
func NewFaultRT(inner http.RoundTripper, rules ...RTRule) *FaultRT {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &FaultRT{inner: inner, rules: rules, released: make(chan struct{})}
}

// SetRules replaces the fault schedule. Chaos tests use it to begin a
// partition at a chosen point in the run rather than a request index
// known in advance.
func (f *FaultRT) SetRules(rules ...RTRule) {
	f.mu.Lock()
	f.rules = rules
	f.mu.Unlock()
}

// Release heals every blackhole: parked requests proceed, and future
// requests ignore RTBlackhole rules.
func (f *FaultRT) Release() {
	f.mu.Lock()
	if !f.healed {
		f.healed = true
		close(f.released)
	}
	f.mu.Unlock()
}

// Requests reports how many round trips have been issued.
func (f *FaultRT) Requests() int { f.mu.Lock(); defer f.mu.Unlock(); return f.reqs }

// Trips reports how many times a rule has fired.
func (f *FaultRT) Trips() int { f.mu.Lock(); defer f.mu.Unlock(); return f.trips }

// OnTrip registers a callback invoked (without internal locks held)
// every time a rule fires.
func (f *FaultRT) OnTrip(fn func(req int, r RTRule)) { f.mu.Lock(); f.onTrip = fn; f.mu.Unlock() }

// RoundTrip implements http.RoundTripper.
func (f *FaultRT) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	idx := f.reqs
	f.reqs++
	var hit *RTRule
	for i := range f.rules {
		r := &f.rules[i]
		if r.Method != "" && r.Method != req.Method {
			continue
		}
		if r.HostContains != "" && !strings.Contains(req.URL.Host, r.HostContains) {
			continue
		}
		if r.PathContains != "" && !strings.Contains(req.URL.Path, r.PathContains) {
			continue
		}
		if idx < r.From || (r.Count > 0 && idx >= r.From+r.Count) {
			continue
		}
		if r.Mode == RTBlackhole && f.healed {
			continue
		}
		hit = r
		break
	}
	var rv RTRule
	var cb func(int, RTRule)
	released := f.released
	if hit != nil {
		f.trips++
		rv = *hit
		cb = f.onTrip
	}
	f.mu.Unlock()
	if hit == nil {
		return f.inner.RoundTrip(req)
	}
	if cb != nil {
		cb(idx, rv)
	}
	switch rv.Mode {
	case RTLatency:
		select {
		case <-time.After(rv.Delay):
		case <-req.Context().Done():
			return nil, fmt.Errorf("fabric: %s %s: %w", req.Method, req.URL, req.Context().Err())
		}
		return f.inner.RoundTrip(req)
	case RTTorn:
		resp, err := f.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		return tearResponse(resp, rv.KeepBytes)
	case RTBlackhole:
		select {
		case <-released:
			return f.inner.RoundTrip(req)
		case <-req.Context().Done():
			return nil, fmt.Errorf("fabric: %s %s: %w: %w", req.Method, req.URL, ErrRTBlackhole, req.Context().Err())
		}
	default:
		e := rv.Err
		if e == nil {
			e = ErrRTInjected
		}
		return nil, fmt.Errorf("fabric: %s %s: %w", req.Method, req.URL, e)
	}
}

// tearResponse truncates the response body while leaving the declared
// Content-Length alone, so the client reads a prefix and then hits an
// unexpected EOF — exactly what a connection cut mid-response looks
// like.
func tearResponse(resp *http.Response, keep int) (*http.Response, error) {
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if keep == 0 {
		keep = len(body) / 2
	}
	if keep < 0 {
		keep = 0
	}
	if keep > len(body) {
		keep = len(body)
	}
	resp.Body = &tornBody{r: bytes.NewReader(body[:keep])}
	return resp, nil
}

type tornBody struct{ r *bytes.Reader }

func (b *tornBody) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	if errors.Is(err, io.EOF) {
		return n, io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *tornBody) Close() error { return nil }
