package rescache

import "sync"

// Singleflight collapses concurrent work on the same digest: the
// first claimant becomes the leader and actually runs, later
// claimants are parked as followers until the leader ends the flight.
// Unlike the classic blocking singleflight, nothing waits inside this
// type — End hands the follower identities back to the caller, which
// re-queues them to consume the leader's (now cached) result. That
// keeps a bounded worker pool safe: a parked follower frees its
// worker instead of blocking it on a leader that may need the same
// pool to finish.
type Singleflight struct {
	mu      sync.Mutex
	flights map[string][]string // digest -> parked follower owners
}

// Begin claims digest for owner. The first claimant is the leader and
// gets true; every later claimant is parked as a follower and gets
// false.
func (g *Singleflight) Begin(digest, owner string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.flights == nil {
		g.flights = map[string][]string{}
	}
	followers, ok := g.flights[digest]
	if !ok {
		g.flights[digest] = nil
		return true
	}
	g.flights[digest] = append(followers, owner)
	return false
}

// End closes the flight and returns the parked followers, in arrival
// order. Only the leader calls End, exactly once, however its run
// ended — the followers must be released even when the leader failed,
// so one of them can take over.
func (g *Singleflight) End(digest string) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	followers := g.flights[digest]
	delete(g.flights, digest)
	return followers
}
