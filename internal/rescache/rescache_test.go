package rescache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"seqatpg/internal/atpg/hitec"
	"seqatpg/internal/campaign"
	"seqatpg/internal/fault"
	"seqatpg/internal/ioguard"
	"seqatpg/internal/netlist"
)

func testDigest(n byte) string {
	return strings.Repeat(fmt.Sprintf("%02x", n), 32)
}

func open(t *testing.T, dir string, capBytes int64) *Cache {
	t.Helper()
	c, err := Open(Options{Dir: dir, CapBytes: capBytes, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPutGetRoundtrip(t *testing.T) {
	c := open(t, t.TempDir(), -1)
	d := testDigest(1)
	want := map[string][]byte{
		"result.json": []byte(`{"detected": 3}` + "\n"),
		"vectors.vec": []byte("0X1\n10X\n"),
	}
	if err := c.Put(d, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(d)
	if !ok {
		t.Fatal("stored entry reads as a miss")
	}
	if len(got) != len(want) {
		t.Fatalf("got %d files, want %d", len(got), len(want))
	}
	for name, data := range want {
		if !bytes.Equal(got[name], data) {
			t.Errorf("%s: got %q, want %q", name, got[name], data)
		}
	}
	if _, ok := c.Get(testDigest(2)); ok {
		t.Fatal("unknown digest reads as a hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stored != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 stored, 1 entry", st)
	}
	if want := int64(len(want["result.json"]) + len(want["vectors.vec"])); st.Bytes != want {
		t.Fatalf("bytes = %d, want %d", st.Bytes, want)
	}
}

func TestPutValidation(t *testing.T) {
	c := open(t, t.TempDir(), -1)
	files := map[string][]byte{"a": []byte("x")}
	for _, d := range []string{"", "UPPER", "zz", "ent-abc", "../escape"} {
		if err := c.Put(d, files); err == nil {
			t.Errorf("digest %q accepted", d)
		}
	}
	for _, name := range []string{"entry.json", "../escape", "a/b", "."} {
		if err := c.Put(testDigest(3), map[string][]byte{name: []byte("x")}); err == nil {
			t.Errorf("file name %q accepted", name)
		}
	}
	if err := c.Put(testDigest(3), map[string][]byte{}); err == nil {
		t.Error("empty entry accepted")
	}
}

// TestLRUEviction fills a bounded cache past its cap and checks that
// the least-recently-used entries go first, that a Get refreshes
// recency, and that the byte accounting never exceeds the cap.
func TestLRUEviction(t *testing.T) {
	payload := func(n int) map[string][]byte {
		return map[string][]byte{"blob": bytes.Repeat([]byte{byte(n)}, 100)}
	}
	c := open(t, t.TempDir(), 250) // room for two 100-byte entries
	for n := 1; n <= 2; n++ {
		if err := c.Put(testDigest(byte(n)), payload(n)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 1 so 2 becomes the eviction candidate.
	if _, ok := c.Get(testDigest(1)); !ok {
		t.Fatal("entry 1 missing before eviction")
	}
	if err := c.Put(testDigest(3), payload(3)); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Bytes > 250 || st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats after eviction = %+v, want <=250 bytes, 1 eviction, 2 entries", st)
	}
	if _, ok := c.Get(testDigest(2)); ok {
		t.Error("LRU entry 2 survived the eviction")
	}
	for _, n := range []byte{1, 3} {
		if _, ok := c.Get(testDigest(n)); !ok {
			t.Errorf("entry %d evicted out of LRU order", n)
		}
	}
}

func TestOversizedEntryRefused(t *testing.T) {
	c := open(t, t.TempDir(), 50)
	if err := c.Put(testDigest(1), map[string][]byte{"blob": bytes.Repeat([]byte{1}, 100)}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Entries != 0 || st.Stored != 0 || st.Bytes != 0 {
		t.Fatalf("oversized entry was stored: %+v", st)
	}
}

func TestDuplicatePutIsNoop(t *testing.T) {
	c := open(t, t.TempDir(), -1)
	d := testDigest(4)
	if err := c.Put(d, map[string][]byte{"a": []byte("first")}); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(d, map[string][]byte{"a": []byte("second")}); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Get(d)
	if string(got["a"]) != "first" {
		t.Fatalf("duplicate Put replaced the entry: %q", got["a"])
	}
	if st := c.Stats(); st.Stored != 1 {
		t.Fatalf("stored = %d, want 1", st.Stored)
	}
}

// TestCorruptEntryQuarantined flips bytes in stored files and
// manifests and checks every corruption reads as a miss with the
// entry moved aside — never an error, never stale bytes.
func TestCorruptEntryQuarantined(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
	}{
		{"payload bit flip", func(t *testing.T, dir string) {
			flipFile(t, filepath.Join(dir, "blob"))
		}},
		{"payload truncated", func(t *testing.T, dir string) {
			if err := os.WriteFile(filepath.Join(dir, "blob"), []byte("sh"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"payload missing", func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, "blob")); err != nil {
				t.Fatal(err)
			}
		}},
		{"manifest torn", func(t *testing.T, dir string) {
			data, err := os.ReadFile(filepath.Join(dir, metaName))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, metaName), data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			root := t.TempDir()
			c := open(t, root, -1)
			d := testDigest(5)
			if err := c.Put(d, map[string][]byte{"blob": []byte("payload bytes")}); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, filepath.Join(root, entryPrefix+d))
			if _, ok := c.Get(d); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			st := c.Stats()
			if st.Quarantined != 1 || st.Misses != 1 || st.Entries != 0 || st.Bytes != 0 {
				t.Fatalf("stats = %+v, want 1 quarantined, 1 miss, empty cache", st)
			}
			if _, err := os.Stat(filepath.Join(root, quarPrefix+d)); err != nil {
				t.Errorf("quarantine directory missing: %v", err)
			}
			// The digest is insertable again after quarantine.
			if err := c.Put(d, map[string][]byte{"blob": []byte("payload bytes")}); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get(d); !ok {
				t.Fatal("re-stored entry misses")
			}
		})
	}
}

func flipFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReopen closes the book on durability: entries survive a
// restart, a corrupt manifest is quarantined during the rescan, stale
// staging directories are swept, and a shrunken cap trims the index.
func TestReopen(t *testing.T) {
	root := t.TempDir()
	c := open(t, root, -1)
	for n := byte(1); n <= 3; n++ {
		if err := c.Put(testDigest(n), map[string][]byte{"blob": bytes.Repeat([]byte{n}, 100)}); err != nil {
			t.Fatal(err)
		}
	}
	// A crash artifact and a corrupt manifest for the rescan to handle.
	if err := os.MkdirAll(filepath.Join(root, tmpPrefix+testDigest(9)), 0o755); err != nil {
		t.Fatal(err)
	}
	flipFile(t, filepath.Join(root, entryPrefix+testDigest(2), metaName))

	c2 := open(t, root, -1)
	st := c2.Stats()
	if st.Entries != 2 || st.Quarantined != 1 {
		t.Fatalf("reopened stats = %+v, want 2 entries, 1 quarantined", st)
	}
	for _, n := range []byte{1, 3} {
		if _, ok := c2.Get(testDigest(n)); !ok {
			t.Errorf("entry %d lost across reopen", n)
		}
	}
	if _, err := os.Stat(filepath.Join(root, tmpPrefix+testDigest(9))); !os.IsNotExist(err) {
		t.Error("stale staging directory survived reopen")
	}

	// Reopen under a cap smaller than the surviving entries: the index
	// must trim itself and never report bytes above the cap.
	c3 := open(t, root, 150)
	if st := c3.Stats(); st.Bytes > 150 || st.Entries != 1 {
		t.Fatalf("capped reopen stats = %+v, want <=150 bytes, 1 entry", st)
	}
}

// TestTornPutNeverVisible interrupts a Put mid-write with an injected
// torn write and checks the half-written entry is neither indexed nor
// resurrected by a later Open.
func TestTornPutNeverVisible(t *testing.T) {
	root := t.TempDir()
	ffs := ioguard.NewFaultFS(ioguard.OS, ioguard.Rule{
		Kind: "write", PathContains: tmpPrefix, Mode: ioguard.Torn,
	})
	c, err := Open(Options{Dir: root, CapBytes: -1, FS: ffs, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	d := testDigest(6)
	if err := c.Put(d, map[string][]byte{"blob": []byte("will be torn")}); err == nil {
		t.Fatal("torn Put reported success")
	}
	if _, ok := c.Get(d); ok {
		t.Fatal("torn entry served as a hit")
	}
	reopened := open(t, root, -1)
	if _, ok := reopened.Get(d); ok {
		t.Fatal("torn entry resurrected by reopen")
	}
	if st := reopened.Stats(); st.Entries != 0 {
		t.Fatalf("reopened entries = %d, want 0", st.Entries)
	}
}

// TestDigest pins that the content address tracks exactly the
// semantic campaign inputs: circuit, config, fault list and mode bind;
// the excluded non-semantic knobs (ObliviousSim) do not.
func TestDigest(t *testing.T) {
	text := "INPUT(a)\nOUTPUT(z)\nd = DFF(g)\ng = AND(a, d)\nz = NOT(d)\n"
	c, err := netlist.ReadBench(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	cfg := campaign.Config{Engine: hitec.DefaultConfig(1, 1000)}
	faults := fault.CollapsedUniverse(c)

	base := Digest(c, cfg, faults, "job-seq")
	if again := Digest(c, cfg, faults, "job-seq"); again != base {
		t.Fatal("digest is not deterministic")
	}
	if d := Digest(c, cfg, faults, "job-sharded-2"); d == base {
		t.Error("mode does not bind")
	}
	if d := Digest(c, cfg, faults[:len(faults)-1], "job-seq"); d == base {
		t.Error("fault list does not bind")
	}
	cfg2 := cfg
	cfg2.Retries = 3
	if d := Digest(c, cfg2, faults, "job-seq"); d == base {
		t.Error("retries do not bind")
	}
	cfg3 := cfg
	cfg3.Engine.FaultBudget *= 2
	if d := Digest(c, cfg3, faults, "job-seq"); d == base {
		t.Error("engine budget does not bind")
	}
	cfg4 := cfg
	cfg4.Engine.ObliviousSim = true
	if d := Digest(c, cfg4, faults, "job-seq"); d != base {
		t.Error("ObliviousSim perturbs the digest; it is a non-semantic verification knob")
	}
}

func TestSingleflight(t *testing.T) {
	var g Singleflight
	if !g.Begin("d1", "a") {
		t.Fatal("first claimant is not the leader")
	}
	if g.Begin("d1", "b") || g.Begin("d1", "c") {
		t.Fatal("follower claimed leadership")
	}
	if !g.Begin("d2", "x") {
		t.Fatal("a different digest shares the flight")
	}
	followers := g.End("d1")
	if len(followers) != 2 || followers[0] != "b" || followers[1] != "c" {
		t.Fatalf("followers = %v, want [b c]", followers)
	}
	// The flight is gone: the next claimant leads again.
	if !g.Begin("d1", "b") {
		t.Fatal("post-End claimant is not the leader")
	}
	if got := g.End("d1"); len(got) != 0 {
		t.Fatalf("fresh flight has followers %v", got)
	}
}

// TestSingleflightRace hammers one digest from many goroutines:
// exactly one leader per flight generation, and every follower is
// returned exactly once.
func TestSingleflightRace(t *testing.T) {
	var g Singleflight
	const claimants = 32
	var wg sync.WaitGroup
	leaders := make(chan string, claimants)
	for i := 0; i < claimants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if g.Begin("d", fmt.Sprintf("owner%d", i)) {
				leaders <- fmt.Sprintf("owner%d", i)
			}
		}(i)
	}
	wg.Wait()
	close(leaders)
	var lead []string
	for l := range leaders {
		lead = append(lead, l)
	}
	if len(lead) != 1 {
		t.Fatalf("%d leaders for one digest: %v", len(lead), lead)
	}
	followers := g.End("d")
	if len(followers) != claimants-1 {
		t.Fatalf("%d followers returned, want %d", len(followers), claimants-1)
	}
	seen := map[string]bool{lead[0]: true}
	for _, f := range followers {
		if seen[f] {
			t.Fatalf("owner %s returned twice", f)
		}
		seen[f] = true
	}
}

func TestConcurrentPutGet(t *testing.T) {
	c := open(t, t.TempDir(), 4096)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := byte(1); n <= 10; n++ {
				d := testDigest(n)
				c.Put(d, map[string][]byte{"blob": bytes.Repeat([]byte{n}, 64)})
				if files, ok := c.Get(d); ok {
					if len(files["blob"]) != 64 || files["blob"][0] != n {
						t.Errorf("digest %d served wrong bytes", n)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > 4096 {
		t.Fatalf("bytes %d exceeded the cap under concurrency", st.Bytes)
	}
}
