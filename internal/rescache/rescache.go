// Package rescache is the content-addressed result cache: ATPG
// campaign results are pure functions of (netlist, fault universe,
// campaign config), which the campaign layer already proves with
// fingerprinted checkpoints and byte-identical sharded runs, so a
// finished campaign's artifacts can be stored under a digest of those
// inputs and replayed verbatim for every later identical submission.
//
// The cache is disk-backed and crash-tolerant without being precious
// about it: every entry is staged in a temp directory and renamed into
// place, every stored file carries a CRC in the entry manifest, and a
// read that finds anything wrong — torn manifest, missing file, CRC
// mismatch — quarantines the entry and reports a miss, so corruption
// degrades to a cold run instead of a wrong answer. Capacity is
// bounded: inserts evict least-recently-used entries until the new
// payload fits.
//
// On-disk layout under the cache root:
//
//	ent-<digest>/entry.json   manifest: format version, per-file CRCs
//	ent-<digest>/<name>       stored artifact files, byte-exact
//	quar-<digest>/            quarantined corrupt entries, kept for inspection
//	tmp-<digest>/             staging; swept at Open after a crash
package rescache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"seqatpg/internal/campaign"
	"seqatpg/internal/fault"
	"seqatpg/internal/ioguard"
	"seqatpg/internal/netlist"
)

// FormatVersion guards the on-disk entry layout; entries written by a
// different version are quarantined rather than trusted.
const FormatVersion = 1

// DefaultCap is the capacity bound selected when Options.CapBytes is
// zero.
const DefaultCap int64 = 256 << 20

const (
	metaName    = "entry.json"
	entryPrefix = "ent-"
	tmpPrefix   = "tmp-"
	quarPrefix  = "quar-"
)

// Options configures a Cache. Dir is the only required field.
type Options struct {
	// Dir is the cache root directory (created if missing).
	Dir string
	// CapBytes bounds the total stored payload bytes: inserts past it
	// evict least-recently-used entries. Zero selects DefaultCap;
	// negative disables the bound.
	CapBytes int64
	// FS is the filesystem seam; nil selects the real one.
	FS ioguard.FS
	// Logf receives cache events (quarantines, evictions, refused
	// inserts); nil discards them.
	Logf func(format string, args ...any)
}

// Stats is a point-in-time view of the cache counters.
type Stats struct {
	// Entries and Bytes describe what is stored right now.
	Entries int
	Bytes   int64
	// Hits and Misses count Get outcomes; a quarantined read counts as
	// both a quarantine and a miss.
	Hits   int64
	Misses int64
	// Stored counts successful Puts; Evictions counts entries removed
	// to stay under the capacity bound.
	Stored    int64
	Evictions int64
	// Quarantined counts corrupt entries moved aside — at Open (bad
	// manifest) or at Get (CRC or size mismatch, missing file).
	Quarantined int64
}

// Cache is a content-addressed, disk-backed, LRU-bounded result store.
// All methods are safe for concurrent use.
type Cache struct {
	dir  string
	cap  int64
	fs   ioguard.FS
	logf func(string, ...any)

	mu      sync.Mutex
	entries map[string]*entry
	// lru holds digests, most recently used first; entries index into
	// it is not kept — the list is short (capacity-bounded) and only
	// walked on eviction.
	lru   []string
	bytes int64
	stats Stats
}

// entry is the in-memory index record of one stored digest.
type entry struct {
	digest  string
	bytes   int64
	created time.Time
}

// metaFile is the entry manifest: it binds the stored files to the
// digest and carries the per-file CRCs a read validates.
type metaFile struct {
	Version int        `json:"version"`
	Digest  string     `json:"digest"`
	Created time.Time  `json:"created"`
	Files   []fileMeta `json:"files"`
}

type fileMeta struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
	Crc  uint32 `json:"crc32"`
}

// Open loads (or creates) a cache directory: stale staging directories
// are swept, existing entries are indexed (oldest becomes the eviction
// candidate), unreadable manifests are quarantined, and the index is
// trimmed to the capacity bound in case it shrank.
func Open(opts Options) (*Cache, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("rescache: empty cache directory")
	}
	capBytes := opts.CapBytes
	if capBytes == 0 {
		capBytes = DefaultCap
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = ioguard.OS
	}
	c := &Cache{
		dir:     opts.Dir,
		cap:     capBytes,
		fs:      fsys,
		logf:    opts.Logf,
		entries: map[string]*entry{},
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	if err := fsys.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("rescache: cache directory: %w", err)
	}
	if err := c.load(); err != nil {
		return nil, err
	}
	return c, nil
}

// load scans the cache root, building the index. Called once from
// Open; no lock needed yet.
func (c *Cache) load() error {
	dirents, err := c.fs.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("rescache: scan %s: %w", c.dir, err)
	}
	var loaded []*entry
	for _, de := range dirents {
		name := de.Name()
		switch {
		case !de.IsDir():
			continue
		case strings.HasPrefix(name, tmpPrefix):
			// A crash mid-Put left staging behind; it was never visible.
			if err := c.removeDir(filepath.Join(c.dir, name)); err == nil {
				c.logf("rescache: swept stale staging %s", name)
			}
		case strings.HasPrefix(name, entryPrefix):
			digest := strings.TrimPrefix(name, entryPrefix)
			meta, err := c.readMeta(digest)
			if err != nil {
				c.quarantineLocked(digest, fmt.Sprintf("manifest: %v", err))
				continue
			}
			e := &entry{digest: digest, created: meta.Created}
			for _, f := range meta.Files {
				e.bytes += f.Size
			}
			loaded = append(loaded, e)
		}
	}
	// Recency across restarts is unknown; creation time is the best
	// available order (newest first, so the oldest entries evict first).
	sort.Slice(loaded, func(i, k int) bool { return loaded[i].created.After(loaded[k].created) })
	for _, e := range loaded {
		c.entries[e.digest] = e
		c.lru = append(c.lru, e.digest)
		c.bytes += e.bytes
	}
	c.evictLocked(0)
	c.stats.Evictions = 0 // trimming a shrunk cap at open is not runtime pressure
	return nil
}

// Get returns the stored files for digest, or (nil, false) on a miss.
// Every returned file was CRC-validated against the manifest; an entry
// failing validation in any way is quarantined and reported as a miss,
// so the caller always falls through to a correct cold run.
func (c *Cache) Get(digest string) (map[string][]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[digest]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	files, err := c.readEntry(e)
	if err != nil {
		c.quarantineLocked(digest, err.Error())
		c.dropLocked(e)
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.touchLocked(digest)
	return files, true
}

// readEntry loads and validates every file of an entry.
func (c *Cache) readEntry(e *entry) (map[string][]byte, error) {
	meta, err := c.readMeta(e.digest)
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	files := make(map[string][]byte, len(meta.Files))
	for _, f := range meta.Files {
		data, err := c.fs.ReadFile(filepath.Join(c.entryDir(e.digest), f.Name))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.Name, err)
		}
		if int64(len(data)) != f.Size {
			return nil, fmt.Errorf("%s: %d bytes, manifest says %d", f.Name, len(data), f.Size)
		}
		if crc := crc32.ChecksumIEEE(data); crc != f.Crc {
			return nil, fmt.Errorf("%s: crc %08x, manifest says %08x", f.Name, crc, f.Crc)
		}
		files[f.Name] = data
	}
	return files, nil
}

func (c *Cache) readMeta(digest string) (*metaFile, error) {
	data, err := c.fs.ReadFile(filepath.Join(c.entryDir(digest), metaName))
	if err != nil {
		return nil, err
	}
	var meta metaFile
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, err
	}
	if meta.Version != FormatVersion {
		return nil, fmt.Errorf("format v%d, this build reads v%d", meta.Version, FormatVersion)
	}
	if meta.Digest != digest {
		return nil, fmt.Errorf("manifest names digest %.12s", meta.Digest)
	}
	return &meta, nil
}

// Put stores files under digest. An existing entry wins (results are
// deterministic, so the bytes are the same by construction); a payload
// larger than the whole capacity is refused with a log line rather
// than evicting everything for one entry. The entry is staged and
// renamed into place, so a reader (or a crash) never observes it half
// written.
func (c *Cache) Put(digest string, files map[string][]byte) error {
	if err := checkDigest(digest); err != nil {
		return err
	}
	var size int64
	meta := metaFile{Version: FormatVersion, Digest: digest, Created: time.Now().UTC()}
	for name, data := range files {
		if name == metaName || name != filepath.Base(name) || name == "." {
			return fmt.Errorf("rescache: invalid entry file name %q", name)
		}
		size += int64(len(data))
		meta.Files = append(meta.Files, fileMeta{Name: name, Size: int64(len(data)), Crc: crc32.ChecksumIEEE(data)})
	}
	if len(meta.Files) == 0 {
		return fmt.Errorf("rescache: empty entry for %.12s", digest)
	}
	sort.Slice(meta.Files, func(i, k int) bool { return meta.Files[i].Name < meta.Files[k].Name })

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[digest]; ok {
		c.touchLocked(digest)
		return nil
	}
	if c.cap > 0 && size > c.cap {
		c.logf("rescache: refusing %.12s: %d bytes exceeds the %d-byte capacity", digest, size, c.cap)
		return nil
	}
	c.evictLocked(size)

	staging := filepath.Join(c.dir, tmpPrefix+digest)
	if err := c.writeEntryDir(staging, meta, files); err != nil {
		c.removeDir(staging)
		return fmt.Errorf("rescache: store %.12s: %w", digest, err)
	}
	if err := c.fs.Rename(staging, c.entryDir(digest)); err != nil {
		c.removeDir(staging)
		return fmt.Errorf("rescache: store %.12s: %w", digest, err)
	}
	if err := c.fs.SyncDir(c.dir); err != nil {
		c.logf("rescache: fsync cache dir: %v", err)
	}
	e := &entry{digest: digest, bytes: size, created: meta.Created}
	c.entries[digest] = e
	c.lru = append([]string{digest}, c.lru...)
	c.bytes += size
	c.stats.Stored++
	return nil
}

// writeEntryDir stages one entry: every payload file plus the
// manifest, each synced before the caller renames the directory.
func (c *Cache) writeEntryDir(dir string, meta metaFile, files map[string][]byte) error {
	if err := c.fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range meta.Files {
		path := filepath.Join(dir, f.Name)
		if err := c.fs.WriteFile(path, files[f.Name], 0o644); err != nil {
			return err
		}
		if err := c.fs.Sync(path); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(meta, "", " ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, metaName)
	if err := c.fs.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return c.fs.Sync(path)
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = len(c.entries)
	st.Bytes = c.bytes
	return st
}

// touchLocked moves digest to the most-recently-used position.
func (c *Cache) touchLocked(digest string) {
	for i, d := range c.lru {
		if d == digest {
			copy(c.lru[1:i+1], c.lru[:i])
			c.lru[0] = digest
			return
		}
	}
}

// evictLocked removes least-recently-used entries until incoming more
// bytes fit under the capacity bound.
func (c *Cache) evictLocked(incoming int64) {
	if c.cap <= 0 {
		return
	}
	for c.bytes+incoming > c.cap && len(c.lru) > 0 {
		victim := c.entries[c.lru[len(c.lru)-1]]
		if err := c.removeDir(c.entryDir(victim.digest)); err != nil {
			c.logf("rescache: evicting %.12s: %v", victim.digest, err)
		}
		c.dropLocked(victim)
		c.stats.Evictions++
		c.logf("rescache: evicted %.12s (%d bytes)", victim.digest, victim.bytes)
	}
}

// dropLocked removes an entry from the in-memory index only.
func (c *Cache) dropLocked(e *entry) {
	delete(c.entries, e.digest)
	for i, d := range c.lru {
		if d == e.digest {
			c.lru = append(c.lru[:i], c.lru[i+1:]...)
			break
		}
	}
	c.bytes -= e.bytes
}

// quarantineLocked moves a corrupt entry aside, keeping its bytes for
// inspection; if even that fails the entry is deleted outright. Either
// way the digest reads as a miss afterwards.
func (c *Cache) quarantineLocked(digest, reason string) {
	src := c.entryDir(digest)
	dst := filepath.Join(c.dir, quarPrefix+digest)
	c.removeDir(dst) // a previous quarantine of the same digest
	if err := c.fs.Rename(src, dst); err != nil {
		c.removeDir(src)
	}
	c.stats.Quarantined++
	c.logf("rescache: quarantined %.12s: %s", digest, reason)
}

// removeDir deletes a directory and its immediate files (entries are
// flat; ioguard.FS has no recursive remove).
func (c *Cache) removeDir(dir string) error {
	dirents, err := c.fs.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, de := range dirents {
		if err := c.fs.Remove(filepath.Join(dir, de.Name())); err != nil {
			return err
		}
	}
	return c.fs.Remove(dir)
}

func (c *Cache) entryDir(digest string) string {
	return filepath.Join(c.dir, entryPrefix+digest)
}

func checkDigest(digest string) error {
	if digest == "" {
		return fmt.Errorf("rescache: empty digest")
	}
	for _, r := range digest {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return fmt.Errorf("rescache: digest %q is not lowercase hex", digest)
		}
	}
	return nil
}

// Digest derives the content address of a campaign in the given mode.
// It composes over campaign.Fingerprint, which already encodes the
// canonical inputs — the netlist serialization, the engine config with
// its non-semantic fields excluded (ObliviousSim is a verification
// mode with byte-identical results; FsimWorkers is not a config field
// at all), the retry count and the exact fault list. Mode namespaces
// digests whose campaign inputs coincide but whose stored artifacts
// differ: a sequential run, an N-way sharded run (the merged test
// order depends on N) and a shard wire result are distinct entries.
func Digest(c *netlist.Circuit, cfg campaign.Config, faults []fault.Fault, mode string) string {
	h := sha256.New()
	fmt.Fprintf(h, "rescache-v%d\n", FormatVersion)
	fmt.Fprintf(h, "campaign: %s\n", campaign.Fingerprint(c, cfg, faults))
	fmt.Fprintf(h, "mode: %s\n", mode)
	return hex.EncodeToString(h.Sum(nil))
}
