// Package reach computes the valid-state set of a gate-level sequential
// circuit by symbolic (BDD-based) reachability over its next-state
// functions, and from it the paper's key attribute: the density of
// encoding, the fraction of the 2^#DFF possible states that are valid.
// It plays the role SIS extract_seq_dc played in the original study.
package reach

import (
	"fmt"
	"math"

	"seqatpg/internal/bdd"
	"seqatpg/internal/netlist"
)

// Analysis is the result of a reachability run — the Table 6/7 columns.
type Analysis struct {
	NumDFFs     int
	ValidStates float64
	TotalStates float64
	Density     float64
	// Set is the BDD of the valid-state set over the state variables,
	// usable for membership queries via Contains.
	set     bdd.Ref
	mgr     *bdd.Manager
	c       *netlist.Circuit
	nextFns []bdd.Ref
}

// Options tunes the traversal.
type Options struct {
	// FlushCycles is the number of initial cycles with the reset line
	// forced to 1, starting from the full universe of states (the
	// power-up state is unknown). One cycle suffices for non-retimed
	// circuits; retimed circuits need their flush prefix. Values < 1
	// are treated as 1.
	FlushCycles int
	// MaxNodes aborts the analysis when the BDD grows past this bound
	// (0 means the default).
	MaxNodes int
}

const defaultMaxNodes = 4_000_000

// Analyze computes the valid-state set: states reachable from the
// post-flush state set under all input sequences.
func Analyze(c *netlist.Circuit, opt Options) (*Analysis, error) {
	if c.ResetPI < 0 {
		return nil, fmt.Errorf("reach: circuit %s has no reset line", c.Name)
	}
	if opt.FlushCycles < 1 {
		opt.FlushCycles = 1
	}
	if opt.MaxNodes == 0 {
		opt.MaxNodes = defaultMaxNodes
	}
	nb := len(c.DFFs)
	ni := len(c.PIs)
	// Variable order: state bits first, then inputs.
	m := bdd.New(nb + ni)
	stateVar := func(i int) bdd.Ref { return m.Var(i) }
	inputVarIdx := func(i int) int { return nb + i }

	// Build next-state functions over (state, input) variables.
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	val := make([]bdd.Ref, len(c.Gates))
	piIdx := map[int]int{}
	for i, id := range c.PIs {
		piIdx[id] = i
	}
	dffIdx := map[int]int{}
	for i, id := range c.DFFs {
		dffIdx[id] = i
	}
	for _, id := range order {
		g := c.Gates[id]
		switch g.Type {
		case netlist.Input:
			val[id] = m.Var(inputVarIdx(piIdx[id]))
		case netlist.DFF:
			val[id] = stateVar(dffIdx[id])
		case netlist.Const0:
			val[id] = bdd.False
		case netlist.Const1:
			val[id] = bdd.True
		case netlist.Buf, netlist.Output:
			val[id] = val[g.Fanin[0]]
		case netlist.Not:
			val[id] = m.Not(val[g.Fanin[0]])
		case netlist.And, netlist.Nand:
			acc := bdd.True
			for _, f := range g.Fanin {
				acc = m.And(acc, val[f])
			}
			if g.Type == netlist.Nand {
				acc = m.Not(acc)
			}
			val[id] = acc
		case netlist.Or, netlist.Nor:
			acc := bdd.False
			for _, f := range g.Fanin {
				acc = m.Or(acc, val[f])
			}
			if g.Type == netlist.Nor {
				acc = m.Not(acc)
			}
			val[id] = acc
		case netlist.Xor, netlist.Xnor:
			acc := bdd.False
			for _, f := range g.Fanin {
				acc = m.Xor(acc, val[f])
			}
			if g.Type == netlist.Xnor {
				acc = m.Not(acc)
			}
			val[id] = acc
		default:
			return nil, fmt.Errorf("reach: unsupported gate type %v", g.Type)
		}
		if m.Size() > opt.MaxNodes {
			return nil, fmt.Errorf("reach: BDD blew up building logic for %s (>%d nodes)", c.Name, opt.MaxNodes)
		}
	}
	next := make([]bdd.Ref, nb)
	for i, id := range c.DFFs {
		next[i] = val[c.Gates[id].Fanin[0]]
	}
	resetVarIdx := inputVarIdx(piIdx[c.ResetPI])

	img := newImager(m, next, nb, opt.MaxNodes)

	// Flush phase: reset forced to 1, other inputs free, from universe.
	flushNext := make([]bdd.Ref, nb)
	for i, f := range next {
		flushNext[i] = m.Restrict(f, resetVarIdx, true)
	}
	flushImg := newImager(m, flushNext, nb, opt.MaxNodes)
	set := bdd.True
	for k := 0; k < opt.FlushCycles; k++ {
		var err error
		set, err = flushImg.image(set)
		if err != nil {
			return nil, err
		}
	}

	// Fixpoint phase: all inputs (including reset) free.
	reached := set
	frontier := set
	for frontier != bdd.False {
		nxt, err := img.image(frontier)
		if err != nil {
			return nil, err
		}
		newStates := m.And(nxt, m.Not(reached))
		reached = m.Or(reached, nxt)
		frontier = newStates
		if m.Size() > opt.MaxNodes {
			return nil, fmt.Errorf("reach: BDD blew up during traversal of %s", c.Name)
		}
	}

	valid := m.SatCount(reached, nb)
	total := math.Pow(2, float64(nb))
	return &Analysis{
		NumDFFs:     nb,
		ValidStates: valid,
		TotalStates: total,
		Density:     valid / total,
		set:         reached,
		mgr:         m,
		c:           c,
		nextFns:     next,
	}, nil
}

// Contains reports whether the packed state (bit i = DFF i) is valid.
func (a *Analysis) Contains(state uint64) bool {
	assign := make([]bool, a.mgr.NumVars())
	for i := 0; i < a.NumDFFs; i++ {
		assign[i] = (state>>uint(i))&1 == 1
	}
	return a.mgr.Eval(a.set, assign)
}

// imager computes images of state sets under a next-state function
// vector, existentially quantifying current state and inputs via
// recursive output splitting.
type imager struct {
	m        *bdd.Manager
	next     []bdd.Ref
	nb       int
	maxNodes int
	memo     map[memoKey]bdd.Ref
}

type memoKey struct {
	depth int
	set   bdd.Ref
}

func newImager(m *bdd.Manager, next []bdd.Ref, nb, maxNodes int) *imager {
	return &imager{m: m, next: next, nb: nb, maxNodes: maxNodes, memo: map[memoKey]bdd.Ref{}}
}

// image returns the set of next states (over state variables) reachable
// in one step from any (state ∈ set, any input).
func (im *imager) image(set bdd.Ref) (bdd.Ref, error) {
	return im.rec(set, 0)
}

func (im *imager) rec(constraint bdd.Ref, depth int) (bdd.Ref, error) {
	if constraint == bdd.False {
		return bdd.False, nil
	}
	if depth == im.nb {
		return bdd.True, nil
	}
	if im.m.Size() > im.maxNodes {
		return bdd.False, fmt.Errorf("reach: image computation exceeded %d nodes", im.maxNodes)
	}
	key := memoKey{depth, constraint}
	if r, ok := im.memo[key]; ok {
		return r, nil
	}
	f := im.next[depth]
	on := im.m.And(constraint, f)
	off := im.m.And(constraint, im.m.Not(f))
	hi, err := im.rec(on, depth+1)
	if err != nil {
		return bdd.False, err
	}
	lo, err := im.rec(off, depth+1)
	if err != nil {
		return bdd.False, err
	}
	v := im.m.Var(depth)
	out := im.m.Or(im.m.And(v, hi), im.m.And(im.m.Not(v), lo))
	im.memo[key] = out
	return out, nil
}

// StateGraph enumerates the valid states and their successor relation:
// adjacency[s] lists the packed states reachable from s in one step
// under some input. The enumeration is capped at maxStates valid states
// (an error is returned beyond that); inputs are quantified
// symbolically, so wide input spaces cost nothing extra.
func (a *Analysis) StateGraph(maxStates int) (states []uint64, adjacency map[uint64][]uint64, err error) {
	if a.ValidStates > float64(maxStates) {
		return nil, nil, fmt.Errorf("reach: %v valid states exceed the %d cap", a.ValidStates, maxStates)
	}
	nb := a.NumDFFs
	// Enumerate the valid states by walking the BDD's satisfying
	// assignments via exhaustive recursion over state variables (the
	// count is known small).
	var all []uint64
	var walk func(prefix uint64, bit int, f bdd.Ref)
	walk = func(prefix uint64, bit int, f bdd.Ref) {
		if f == bdd.False {
			return
		}
		if bit == nb {
			all = append(all, prefix)
			return
		}
		walk(prefix, bit+1, a.mgr.Restrict(f, bit, false))
		walk(prefix|1<<uint(bit), bit+1, a.mgr.Restrict(f, bit, true))
	}
	walk(0, 0, a.set)

	// Successors per state: build the one-state set and image it.
	img := newImager(a.mgr, a.nextFns, nb, defaultMaxNodes)
	adjacency = map[uint64][]uint64{}
	for _, s := range all {
		cube := bdd.True
		for b := 0; b < nb; b++ {
			v := a.mgr.NVar(b)
			if (s>>uint(b))&1 == 1 {
				v = a.mgr.Var(b)
			}
			cube = a.mgr.And(cube, v)
		}
		succSet, err := img.image(cube)
		if err != nil {
			return nil, nil, err
		}
		var succs []uint64
		var collect func(prefix uint64, bit int, f bdd.Ref)
		collect = func(prefix uint64, bit int, f bdd.Ref) {
			if f == bdd.False {
				return
			}
			if bit == nb {
				succs = append(succs, prefix)
				return
			}
			collect(prefix, bit+1, a.mgr.Restrict(f, bit, false))
			collect(prefix|1<<uint(bit), bit+1, a.mgr.Restrict(f, bit, true))
		}
		collect(0, 0, succSet)
		adjacency[s] = succs
	}
	return all, adjacency, nil
}
