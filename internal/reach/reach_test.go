package reach

import (
	"testing"

	"seqatpg/internal/encode"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/retime"
	"seqatpg/internal/synth"
)

func synthM(t *testing.T, states int, seed int64) (*fsm.FSM, *synth.Result) {
	t.Helper()
	m, err := fsm.Generate(fsm.GenSpec{Name: "rc", Inputs: 4, Outputs: 3, States: states, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.Combined, Script: synth.Rugged, UseUnreachableDC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, r
}

// TestValidStatesMatchFSM: for an original circuit, the valid-state set
// must be exactly the codes of the FSM's reachable states.
func TestValidStatesMatchFSM(t *testing.T) {
	for _, states := range []int{5, 11, 14} {
		m, r := synthM(t, states, int64(states)*7)
		a, err := Analyze(r.Circuit, Options{FlushCycles: 1})
		if err != nil {
			t.Fatal(err)
		}
		if int(a.ValidStates) != m.NumStates() {
			t.Errorf("states=%d: valid = %v, want %d", states, a.ValidStates, m.NumStates())
		}
		want := 1 << uint(r.Encoding.Bits)
		if int(a.TotalStates) != want {
			t.Errorf("states=%d: total = %v, want %d", states, a.TotalStates, want)
		}
		for s := 0; s < m.NumStates(); s++ {
			if !a.Contains(r.Encoding.Code[s]) {
				t.Errorf("state %s code %b not in valid set", m.States[s], r.Encoding.Code[s])
			}
		}
		// A code not assigned to any state must be invalid.
		used := map[uint64]bool{}
		for _, code := range r.Encoding.Code {
			used[code] = true
		}
		for code := uint64(0); code < uint64(a.TotalStates); code++ {
			if !used[code] && a.Contains(code) {
				t.Errorf("unused code %b reported valid", code)
			}
		}
	}
}

// TestDensityDropsUnderRetiming is the core Table 6 effect: retiming
// multiplies total states much faster than valid states.
func TestDensityDropsUnderRetiming(t *testing.T) {
	lib := netlist.DefaultLibrary()
	_, r := synthM(t, 11, 21)
	orig, err := Analyze(r.Circuit, Options{FlushCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := retime.Backward(r.Circuit, lib, 2)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Analyze(res.Circuit, Options{FlushCycles: res.FlushCycles})
	if err != nil {
		t.Fatal(err)
	}
	if re.Density >= orig.Density {
		t.Errorf("density did not drop: %.3g -> %.3g", orig.Density, re.Density)
	}
	if re.TotalStates <= orig.TotalStates {
		t.Error("total states must grow with added DFFs")
	}
	// Valid states may grow but must stay far below the total.
	if re.ValidStates >= re.TotalStates/2 {
		t.Errorf("retimed valid fraction suspiciously high: %v of %v", re.ValidStates, re.TotalStates)
	}
	t.Logf("density %.3g (valid %v / total %v) -> %.3g (valid %v / total %v)",
		orig.Density, orig.ValidStates, orig.TotalStates,
		re.Density, re.ValidStates, re.TotalStates)
}

func TestNoResetRejected(t *testing.T) {
	c := netlist.New("nr")
	in := c.AddGate(netlist.Input, "in")
	ff := c.AddGate(netlist.DFF, "q", in)
	c.AddGate(netlist.Output, "o", ff)
	if _, err := Analyze(c, Options{}); err == nil {
		t.Error("expected error for circuit without reset line")
	}
}

// TestFlushCyclesDefault: FlushCycles < 1 coerces to 1 and matches an
// explicit 1.
func TestFlushCyclesDefault(t *testing.T) {
	_, r := synthM(t, 7, 3)
	a1, err := Analyze(r.Circuit, Options{FlushCycles: 0})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Analyze(r.Circuit, Options{FlushCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a1.ValidStates != a2.ValidStates {
		t.Errorf("default flush differs: %v vs %v", a1.ValidStates, a2.ValidStates)
	}
}

// TestStateGraphMatchesFSM cross-validates the synthesized circuit
// against the behavioural model: the extracted state graph must equal
// the FSM's STG (codes and successor sets).
func TestStateGraphMatchesFSM(t *testing.T) {
	m, r := synthM(t, 9, 13)
	a, err := Analyze(r.Circuit, Options{FlushCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	states, adj, err := a.StateGraph(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != m.NumStates() {
		t.Fatalf("state graph has %d states, FSM has %d", len(states), m.NumStates())
	}
	// Build the FSM's successor sets in code space. The reset input
	// (always able to force the reset state) adds the reset code to
	// every successor set.
	codeOf := r.Encoding.Code
	resetCode := codeOf[m.Reset]
	for s := 0; s < m.NumStates(); s++ {
		want := map[uint64]bool{resetCode: true}
		for _, i := range m.TransFrom(s) {
			want[codeOf[m.Trans[i].To]] = true
		}
		got := map[uint64]bool{}
		for _, succ := range adj[codeOf[s]] {
			got[succ] = true
		}
		if len(got) != len(want) {
			t.Fatalf("state %s: successor sets differ: got %v want %v", m.States[s], got, want)
		}
		for code := range want {
			if !got[code] {
				t.Fatalf("state %s: missing successor %b", m.States[s], code)
			}
		}
	}
}

func TestStateGraphCap(t *testing.T) {
	_, r := synthM(t, 9, 13)
	a, err := Analyze(r.Circuit, Options{FlushCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.StateGraph(3); err == nil {
		t.Error("cap below the valid-state count must error")
	}
}
