package analyze

import (
	"testing"

	"seqatpg/internal/encode"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/retime"
	"seqatpg/internal/synth"
)

// ring builds a ring of n DFFs with a PI entering the ring and a PO
// observing the last register: in -> ff0 -> ff1 -> ... -> ffn-1 -> out,
// plus a feedback edge ffn-1 -> ff0 through an OR with the input.
func ring(t *testing.T, n int) *netlist.Circuit {
	t.Helper()
	c := netlist.New("ring")
	in := c.AddGate(netlist.Input, "in")
	ffs := make([]int, n)
	for i := range ffs {
		ffs[i] = c.AddGate(netlist.DFF, "", 0)
	}
	or := c.AddGate(netlist.Or, "fb", in, ffs[n-1])
	c.Gates[ffs[0]].Fanin[0] = or
	for i := 1; i < n; i++ {
		c.Gates[ffs[i]].Fanin[0] = ffs[i-1]
	}
	c.AddGate(netlist.Output, "out", ffs[n-1])
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRingAttributes(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		c := ring(t, n)
		a, err := Analyze(c)
		if err != nil {
			t.Fatal(err)
		}
		if a.MaxSeqDepth != n {
			t.Errorf("ring(%d): depth = %d, want %d", n, a.MaxSeqDepth, n)
		}
		if a.MaxCycleLength != n {
			t.Errorf("ring(%d): max cycle = %d, want %d", n, a.MaxCycleLength, n)
		}
		if a.NumCycles != 1 {
			t.Errorf("ring(%d): cycles = %d, want 1", n, a.NumCycles)
		}
	}
}

// TestFigure2Semantics reproduces the paper's Figure 2 discussion: two
// parallel combinational paths between the same pair of registers count
// as ONE cycle (unique DFF-set counting), and after splitting the first
// register into two (one per path) the count becomes two.
func TestFigure2Semantics(t *testing.T) {
	// Before: Q1 -> {G1 path, Gnot/G2 path} -> G3 -> Q... modelled as a
	// 2-register loop where the combinational middle has two parallel
	// branches.
	before := netlist.New("fig2a")
	q1 := before.AddGate(netlist.DFF, "q1", 0)
	q2 := before.AddGate(netlist.DFF, "q2", 0)
	g1 := before.AddGate(netlist.Buf, "g1", q2)
	gn := before.AddGate(netlist.Not, "gnot", q2)
	g2 := before.AddGate(netlist.Buf, "g2", gn)
	g3 := before.AddGate(netlist.Or, "g3", g1, g2)
	before.Gates[q1].Fanin[0] = g3
	before.Gates[q2].Fanin[0] = q1
	before.AddGate(netlist.Output, "o", q2)
	in := before.AddGate(netlist.Input, "in")
	_ = in
	if err := before.Validate(); err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(before)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCycles != 1 || a.MaxCycleLength != 2 {
		t.Errorf("before: %v, want 1 cycle of length 2", a)
	}

	// After retiming q1 backward across g3: one register per branch.
	after := netlist.New("fig2b")
	q1a := after.AddGate(netlist.DFF, "q1a", 0)
	q1b := after.AddGate(netlist.DFF, "q1b", 0)
	q2b := after.AddGate(netlist.DFF, "q2", 0)
	g1b := after.AddGate(netlist.Buf, "g1", q2b)
	gnb := after.AddGate(netlist.Not, "gnot", q2b)
	g2b := after.AddGate(netlist.Buf, "g2", gnb)
	after.Gates[q1a].Fanin[0] = g1b
	after.Gates[q1b].Fanin[0] = g2b
	g3b := after.AddGate(netlist.Or, "g3", q1a, q1b)
	after.Gates[q2b].Fanin[0] = g3b
	after.AddGate(netlist.Output, "o", q2b)
	after.AddGate(netlist.Input, "in")
	if err := after.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(after)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumCycles != 2 {
		t.Errorf("after: %d cycles, want 2 (the Figure 2 doubling)", b.NumCycles)
	}
	if b.MaxCycleLength != 2 {
		t.Errorf("after: max cycle %d, want 2 (Theorem 4 invariance)", b.MaxCycleLength)
	}
}

func synthesized(t *testing.T, seed int64) *netlist.Circuit {
	t.Helper()
	m, err := fsm.Generate(fsm.GenSpec{Name: "an", Inputs: 4, Outputs: 3, States: 11, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.Combined, Script: synth.Rugged, UseUnreachableDC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r.Circuit
}

// TestTheorems234 is the paper's core structural claim: retiming leaves
// the maximum sequential depth and maximum cycle length unchanged while
// the counted number of cycles may grow.
func TestTheorems234(t *testing.T) {
	lib := netlist.DefaultLibrary()
	for _, seed := range []int64{7, 21, 40} {
		c := synthesized(t, seed)
		orig, err := Analyze(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := retime.Backward(c, lib, 2)
		if err != nil {
			t.Fatal(err)
		}
		re, err := Analyze(res.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		if orig.Truncated || re.Truncated {
			t.Fatalf("seed %d: enumeration truncated, circuit too dense for the test", seed)
		}
		if re.MaxSeqDepth != orig.MaxSeqDepth {
			t.Errorf("seed %d: depth changed %d -> %d (Theorem 2 violated)",
				seed, orig.MaxSeqDepth, re.MaxSeqDepth)
		}
		if re.MaxCycleLength != orig.MaxCycleLength {
			t.Errorf("seed %d: max cycle changed %d -> %d (Theorem 4 violated)",
				seed, orig.MaxCycleLength, re.MaxCycleLength)
		}
		if re.NumCycles < orig.NumCycles {
			t.Errorf("seed %d: counted cycles shrank %d -> %d",
				seed, orig.NumCycles, re.NumCycles)
		}
		t.Logf("seed %d: orig %v | re %v (DFFs %d -> %d)", seed, orig, re,
			c.NumDFFs(), res.Circuit.NumDFFs())
	}
}

func TestPurelyCombinational(t *testing.T) {
	c := netlist.New("comb")
	a := c.AddGate(netlist.Input, "a")
	n := c.AddGate(netlist.Not, "n", a)
	c.AddGate(netlist.Output, "o", n)
	attr, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if attr.MaxSeqDepth != 0 || attr.NumCycles != 0 || attr.MaxCycleLength != 0 {
		t.Errorf("combinational circuit: %v", attr)
	}
}
