package analyze

import (
	"math/rand"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := newBitset(130) // spans three words
	for _, i := range []int{0, 63, 64, 127, 129} {
		if b.get(i) {
			t.Errorf("fresh bitset has bit %d set", i)
		}
		b.set(i)
		if !b.get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	b.clear(64)
	if b.get(64) {
		t.Error("bit 64 not cleared")
	}
	if b.get(63) != true || b.get(65) {
		t.Error("clear disturbed neighbours")
	}
}

func TestBitsetOrCloneCount(t *testing.T) {
	a := newBitset(100)
	b := newBitset(100)
	a.set(3)
	a.set(70)
	b.set(70)
	b.set(99)
	c := a.clone()
	c.or(b)
	// c = {3, 70, 99}; a unchanged.
	if !c.get(3) || !c.get(70) || !c.get(99) {
		t.Error("or missed bits")
	}
	if a.get(99) {
		t.Error("clone aliases the original")
	}
	// countExcluding: |c \ b| = |{3}| = 1.
	if n := c.countExcluding(b); n != 1 {
		t.Errorf("countExcluding = %d, want 1", n)
	}
	empty := newBitset(100)
	if n := c.countExcluding(empty); n != 3 {
		t.Errorf("countExcluding(empty) = %d, want 3", n)
	}
}

func TestBitsetKeyDistinguishes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := map[string]bool{}
	for trial := 0; trial < 200; trial++ {
		b := newBitset(80)
		for i := 0; i < 80; i++ {
			if rng.Intn(2) == 1 {
				b.set(i)
			}
		}
		seen[b.key()] = true
	}
	// 200 random 80-bit sets collide with negligible probability.
	if len(seen) < 195 {
		t.Errorf("key() collides too often: %d distinct of 200", len(seen))
	}
}
