// Package analyze computes the structural circuit attributes that the
// reproduced paper's Table 5 reports and that were traditionally
// associated with sequential ATPG complexity:
//
//   - Maximum sequential depth: the largest number of D flip-flops on
//     any primary-input-to-primary-output path that visits each circuit
//     node at most once (the paper's definition, at gate granularity).
//     Invariant under retiming (Theorem 2).
//   - Maximum cycle length: the largest number of D flip-flops on any
//     simple cycle, again at gate granularity. Invariant under retiming
//     (Theorem 4).
//   - Number of cycles, counted per unique D flip-flop subset on the
//     register graph — the Lioy/Montessoro/Gai-style algorithm the
//     paper uses, which (as the paper's Figure 2 discussion explains)
//     can report more cycles for a retimed circuit even though the true
//     cycle structure is preserved (Theorem 3).
//
// The depth and cycle-length searches are exact branch-and-bound DFS
// with an exploration budget; Truncated is set if the budget ran out
// (results are then lower bounds).
package analyze

import (
	"fmt"
	"math/bits"
	"sort"

	"seqatpg/internal/netlist"
)

// Attributes is the Table 5 triple.
type Attributes struct {
	MaxSeqDepth    int
	MaxCycleLength int
	NumCycles      int
	// Truncated is set when a search hit the exploration budget; the
	// reported values are then lower bounds.
	Truncated bool
}

// String renders the attributes like the paper's Table 5 rows.
func (a Attributes) String() string {
	s := fmt.Sprintf("depth=%d maxCycle=%d cycles=%d", a.MaxSeqDepth, a.MaxCycleLength, a.NumCycles)
	if a.Truncated {
		s += " (truncated)"
	}
	return s
}

// explorationBudget bounds the DFS work per search.
const explorationBudget = 3_000_000

// Analyze computes the structural attributes of the circuit.
func Analyze(c *netlist.Circuit) (Attributes, error) {
	if _, err := c.TopoOrder(); err != nil {
		return Attributes{}, err
	}
	a := Attributes{}
	var trunc1, trunc2, trunc3 bool
	a.MaxSeqDepth, trunc1 = maxSeqDepth(c)
	a.MaxCycleLength, trunc2 = maxCycleLength(c)
	g, err := BuildRegisterGraph(c)
	if err != nil {
		return Attributes{}, err
	}
	var sets map[string]bool
	sets, trunc3 = cycleSets(g)
	a.NumCycles = len(sets)
	a.Truncated = trunc1 || trunc2 || trunc3
	return a, nil
}

// bitset is a simple dynamic bitset over DFF indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << uint(i%64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// countExcluding returns |b \ excl|.
func (b bitset) countExcluding(excl bitset) int {
	n := 0
	for i := range b {
		n += bits.OnesCount64(b[i] &^ excl[i])
	}
	return n
}

func (b bitset) key() string { return fmt.Sprint([]uint64(b)) }

// reachableDFFs computes, per gate, the set of DFF indices reachable
// forward through the circuit (crossing registers freely). Used as the
// optimistic bound in the branch-and-bound searches.
func reachableDFFs(c *netlist.Circuit, fanouts [][]int) []bitset {
	n := len(c.Gates)
	nd := len(c.DFFs)
	dffIdx := map[int]int{}
	for i, id := range c.DFFs {
		dffIdx[id] = i
	}
	reach := make([]bitset, n)
	for i := range reach {
		reach[i] = newBitset(nd)
		if k, ok := dffIdx[i]; ok {
			reach[i].set(k)
		}
	}
	// Iterate to fixpoint (the graph is cyclic through DFFs).
	for changed := true; changed; {
		changed = false
		for id := range c.Gates {
			before := reach[id].key()
			for _, o := range fanouts[id] {
				reach[id].or(reach[o])
			}
			if reach[id].key() != before {
				changed = true
			}
		}
	}
	return reach
}

// reachesPO computes, per gate, whether any primary output is reachable
// forward.
func reachesPO(c *netlist.Circuit, fanouts [][]int) []bool {
	n := len(c.Gates)
	out := make([]bool, n)
	var stack []int
	for _, id := range c.POs {
		out[id] = true
		stack = append(stack, id)
	}
	// Reverse reachability from POs.
	faninOf := func(id int) []int { return c.Gates[id].Fanin }
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range faninOf(id) {
			if !out[f] {
				out[f] = true
				stack = append(stack, f)
			}
		}
	}
	return out
}

// maxSeqDepth finds the largest number of DFFs on any simple PI-to-PO
// path at gate granularity, by branch-and-bound DFS.
func maxSeqDepth(c *netlist.Circuit) (int, bool) {
	fanouts := c.Fanouts()
	reach := reachableDFFs(c, fanouts)
	toPO := reachesPO(c, fanouts)
	nd := len(c.DFFs)
	dffIdx := map[int]int{}
	for i, id := range c.DFFs {
		dffIdx[id] = i
	}

	best := 0
	budget := explorationBudget
	truncated := false
	visited := make([]bool, len(c.Gates))
	visitedDFFs := newBitset(nd)

	var dfs func(id, depth int)
	dfs = func(id, depth int) {
		if budget <= 0 {
			truncated = true
			return
		}
		budget--
		if c.Gates[id].Type == netlist.Output {
			if depth > best {
				best = depth
			}
			return
		}
		// Optimistic bound: current depth plus every not-yet-visited DFF
		// still reachable from here.
		if depth+reach[id].countExcluding(visitedDFFs) <= best {
			return
		}
		// Explore high-potential successors first so pruning bites early.
		succ := append([]int(nil), fanouts[id]...)
		sort.Slice(succ, func(a, b int) bool {
			return reach[succ[a]].countExcluding(visitedDFFs) > reach[succ[b]].countExcluding(visitedDFFs)
		})
		for _, o := range succ {
			if visited[o] || !toPO[o] {
				continue
			}
			d := depth
			var di int
			isDFF := false
			if k, ok := dffIdx[o]; ok {
				d++
				di = k
				isDFF = true
			}
			visited[o] = true
			if isDFF {
				visitedDFFs.set(di)
			}
			dfs(o, d)
			if isDFF {
				visitedDFFs.clear(di)
			}
			visited[o] = false
		}
	}
	for _, pi := range c.PIs {
		if !toPO[pi] {
			continue
		}
		visited[pi] = true
		dfs(pi, 0)
		visited[pi] = false
	}
	return best, truncated
}

// maxCycleLength finds the largest number of DFFs on any simple cycle at
// gate granularity: for each DFF (as canonical root, smallest id in its
// cycle), branch-and-bound DFS back to the root.
func maxCycleLength(c *netlist.Circuit) (int, bool) {
	fanouts := c.Fanouts()
	reach := reachableDFFs(c, fanouts)
	nd := len(c.DFFs)
	dffIdx := map[int]int{}
	for i, id := range c.DFFs {
		dffIdx[id] = i
	}
	best := 0
	truncated := false

	for rootPos, root := range c.DFFs {
		// Gates that can reach the root (reverse BFS) — everything else
		// is a dead end for this root.
		canReach := make([]bool, len(c.Gates))
		{
			canReach[root] = true
			work := []int{root}
			for len(work) > 0 {
				id := work[len(work)-1]
				work = work[:len(work)-1]
				for _, f := range c.Gates[id].Fanin {
					if !canReach[f] {
						canReach[f] = true
						work = append(work, f)
					}
				}
			}
		}

		budget := explorationBudget / len(c.DFFs)
		if budget < 100_000 {
			budget = 100_000
		}
		visited := make([]bool, len(c.Gates))
		visitedDFFs := newBitset(nd)
		visited[root] = true
		visitedDFFs.set(rootPos)

		var dfs func(id, count int)
		dfs = func(id, count int) {
			if budget <= 0 {
				truncated = true
				return
			}
			budget--
			if count+reach[id].countExcluding(visitedDFFs) <= best {
				// Even absorbing every remaining reachable DFF cannot
				// beat the incumbent. (reach includes the root only if
				// unvisited, so add 0; count already includes root.)
				return
			}
			for _, o := range fanouts[id] {
				if o == root {
					if count > best {
						best = count
					}
					continue
				}
				if visited[o] || !canReach[o] {
					continue
				}
				// Canonical rooting: skip DFFs with smaller index than
				// the root; their cycles are found from their own root.
				cnt := count
				var di int
				isDFF := false
				if k, ok := dffIdx[o]; ok {
					if k < rootPos {
						continue
					}
					cnt++
					di = k
					isDFF = true
				}
				visited[o] = true
				if isDFF {
					visitedDFFs.set(di)
				}
				dfs(o, cnt)
				if isDFF {
					visitedDFFs.clear(di)
				}
				visited[o] = false
			}
		}
		dfs(root, 1)
	}
	return best, truncated
}
