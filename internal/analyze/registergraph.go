package analyze

import (
	"sort"

	"seqatpg/internal/netlist"
)

// RegisterGraph is the DFF-level abstraction of a circuit: one node per
// DFF plus virtual PI/PO terminal nodes, with an edge wherever a purely
// combinational path connects the endpoints. It underlies the
// Lioy-style cycle counting of Table 5.
type RegisterGraph struct {
	// NumDFF nodes are numbered 0..NumDFF-1 in circuit DFF order; the
	// virtual PI node is NumDFF and the virtual PO node is NumDFF+1.
	NumDFF int
	Adj    [][]int
}

// PINode returns the virtual primary-input node id.
func (g *RegisterGraph) PINode() int { return g.NumDFF }

// PONode returns the virtual primary-output node id.
func (g *RegisterGraph) PONode() int { return g.NumDFF + 1 }

// BuildRegisterGraph extracts the register graph: an edge u→v when a
// combinational path runs from source u (a DFF output or any PI) to
// sink v (a DFF D-input or any PO).
func BuildRegisterGraph(c *netlist.Circuit) (*RegisterGraph, error) {
	if _, err := c.TopoOrder(); err != nil {
		return nil, err
	}
	n := len(c.DFFs)
	g := &RegisterGraph{NumDFF: n, Adj: make([][]int, n+2)}
	dffIndex := map[int]int{}
	for i, id := range c.DFFs {
		dffIndex[id] = i
	}
	fanouts := c.Fanouts()

	reach := func(src int) (dffs map[int]bool, po bool) {
		dffs = map[int]bool{}
		seen := make([]bool, len(c.Gates))
		stack := append([]int(nil), fanouts[src]...)
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[id] {
				continue
			}
			seen[id] = true
			switch c.Gates[id].Type {
			case netlist.DFF:
				dffs[dffIndex[id]] = true
			case netlist.Output:
				po = true
			default:
				stack = append(stack, fanouts[id]...)
			}
		}
		return dffs, po
	}

	addEdges := func(from int, dffs map[int]bool, po bool) {
		var targets []int
		for d := range dffs {
			targets = append(targets, d)
		}
		sort.Ints(targets)
		g.Adj[from] = append(g.Adj[from], targets...)
		if po {
			g.Adj[from] = append(g.Adj[from], g.PONode())
		}
	}

	for i, id := range c.DFFs {
		dffs, po := reach(id)
		addEdges(i, dffs, po)
	}
	piDffs := map[int]bool{}
	piPO := false
	for _, id := range c.PIs {
		dffs, po := reach(id)
		for d := range dffs {
			piDffs[d] = true
		}
		piPO = piPO || po
	}
	addEdges(g.PINode(), piDffs, piPO)
	return g, nil
}

// cycleSets enumerates the distinct DFF subsets that form simple cycles
// in the register graph: the Lioy-style count where at most one cycle
// exists per unique subset of flip-flops, regardless of how many
// combinational paths realize it. Cycles are enumerated Johnson-style
// with the smallest member as the root and collected as set keys.
func cycleSets(g *RegisterGraph) (map[string]bool, bool) {
	sets := map[string]bool{}
	budget := explorationBudget
	truncated := false
	n := g.NumDFF
	// Reverse adjacency over the DFF nodes, for per-root pruning.
	radj := make([][]int, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Adj[u] {
			if v < n {
				radj[v] = append(radj[v], u)
			}
		}
	}
	visited := make([]bool, n)
	inStack := newBitset(n)
	canReach := make([]bool, n)
	var dfs func(root, node int)
	dfs = func(root, node int) {
		if budget <= 0 {
			truncated = true
			return
		}
		budget--
		for _, next := range g.Adj[node] {
			if next >= n {
				continue // virtual terminals take no part in cycles
			}
			if next == root {
				sets[inStack.key()] = true
				continue
			}
			if next < root || visited[next] || !canReach[next] {
				continue // only cycles rooted at their smallest member
			}
			visited[next] = true
			inStack.set(next)
			dfs(root, next)
			inStack.clear(next)
			visited[next] = false
		}
	}
	for root := 0; root < n; root++ {
		// canReach: DFF nodes ≥ root with a path back to root.
		for i := range canReach {
			canReach[i] = false
		}
		work := []int{root}
		canReach[root] = true
		for len(work) > 0 {
			v := work[len(work)-1]
			work = work[:len(work)-1]
			for _, u := range radj[v] {
				if u >= root && !canReach[u] {
					canReach[u] = true
					work = append(work, u)
				}
			}
		}
		visited[root] = true
		inStack.set(root)
		dfs(root, root)
		inStack.clear(root)
		visited[root] = false
	}
	return sets, truncated
}
