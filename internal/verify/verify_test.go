package verify

import (
	"testing"

	"seqatpg/internal/encode"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/retime"
	"seqatpg/internal/synth"
)

func synthC(t *testing.T, states int, seed int64, alg encode.Algorithm, script synth.Script) *netlist.Circuit {
	t.Helper()
	m, err := fsm.Generate(fsm.GenSpec{Name: "vf", Inputs: 4, Outputs: 3, States: states, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: alg, Script: script, UseUnreachableDC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r.Circuit
}

func TestSelfEquivalence(t *testing.T) {
	c := synthC(t, 9, 7, encode.Combined, synth.Rugged)
	ok, ce, err := Equivalent(c, c, Options{FlushCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("circuit not equivalent to itself: %v", ce)
	}
}

// TestSynthesisVariantsEquivalent: the same FSM synthesized under
// different scripts implements the same I/O behaviour.
func TestSynthesisVariantsEquivalent(t *testing.T) {
	a := synthC(t, 9, 7, encode.Combined, synth.Rugged)
	b := synthC(t, 9, 7, encode.Combined, synth.Delay)
	ok, ce, err := Equivalent(a, b, Options{FlushCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("rugged and delay variants differ: %v", ce)
	}
	// Even under different state assignments.
	c := synthC(t, 9, 7, encode.InputDominant, synth.Rugged)
	ok, ce, err = Equivalent(a, c, Options{FlushCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("ji and jc encodings differ: %v", ce)
	}
}

// TestRetimingEquivalence is Theorem 1's behavioural core, proven
// symbolically rather than by simulation: the retimed circuit is
// equivalent to the original once both are flushed.
func TestRetimingEquivalence(t *testing.T) {
	lib := netlist.DefaultLibrary()
	for _, rounds := range []int{1, 2} {
		c := synthC(t, 9, 21, encode.Combined, synth.Rugged)
		re, err := retime.Backward(c, lib, rounds)
		if err != nil {
			t.Fatal(err)
		}
		ok, ce, err := Equivalent(c, re.Circuit, Options{FlushCycles: re.FlushCycles})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("rounds=%d: retimed circuit not equivalent: %v", rounds, ce)
		}
	}
}

// TestDetectsInjectedBug: a deliberately corrupted copy must be caught
// with a counterexample that actually demonstrates the difference.
func TestDetectsInjectedBug(t *testing.T) {
	a := synthC(t, 9, 7, encode.Combined, synth.Rugged)
	b := a.Clone()
	// Corrupt one output driver: route PO 0 through an inverter.
	po := b.POs[0]
	drv := b.Gates[po].Fanin[0]
	inv := b.AddGate(netlist.Not, "bug", drv)
	b.Gates[po].Fanin[0] = inv
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	ok, ce, err := Equivalent(a, b, Options{FlushCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("injected bug not detected")
	}
	if ce == nil || ce.Output != 0 {
		t.Fatalf("counterexample should blame output 0: %v", ce)
	}
}

// TestDetectsSubtleStateBug: corrupting next-state logic (not outputs
// directly) must also be caught via the product traversal.
func TestDetectsSubtleStateBug(t *testing.T) {
	a := synthC(t, 9, 7, encode.Combined, synth.Rugged)
	b := a.Clone()
	ff := b.DFFs[0]
	drv := b.Gates[ff].Fanin[0]
	inv := b.AddGate(netlist.Not, "bug", drv)
	b.Gates[ff].Fanin[0] = inv
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	ok, _, err := Equivalent(a, b, Options{FlushCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("state-logic bug not detected")
	}
}

func TestInterfaceMismatchRejected(t *testing.T) {
	a := synthC(t, 9, 7, encode.Combined, synth.Rugged)
	b := netlist.New("other")
	in := b.AddGate(netlist.Input, "in")
	b.ResetPI = in
	b.AddGate(netlist.Output, "o", in)
	if _, _, err := Equivalent(a, b, Options{}); err == nil {
		t.Error("interface mismatch must error")
	}
}
