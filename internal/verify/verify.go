// Package verify provides symbolic sequential equivalence checking
// between two circuits with the same primary interface, via BDD
// reachability on the product machine. It is the formal counterpart of
// the retiming behaviour-preservation property (the paper's Theorem 1
// context): after both machines are flushed by holding the explicit
// reset line, every reachable product state must produce identical
// primary outputs under every input.
package verify

import (
	"fmt"

	"seqatpg/internal/bdd"
	"seqatpg/internal/netlist"
)

// Counterexample describes an equivalence violation.
type Counterexample struct {
	// StateA/StateB are the per-DFF values of the violating product
	// state (indexed like the circuits' DFF lists).
	StateA, StateB []bool
	// Inputs is the violating primary input assignment.
	Inputs []bool
	// Output is the index of the differing primary output.
	Output int
}

// String renders the counterexample compactly.
func (c *Counterexample) String() string {
	return fmt.Sprintf("output %d differs: stateA=%v stateB=%v inputs=%v",
		c.Output, c.StateA, c.StateB, c.Inputs)
}

// Options tunes the product traversal.
type Options struct {
	// FlushCycles is the number of reset-held cycles applied to both
	// machines before the outputs are compared (use the retimed
	// circuit's flush length). Values < 1 are treated as 1.
	FlushCycles int
	// MaxNodes bounds the BDD (0 = default).
	MaxNodes int
}

const defaultMaxNodes = 4_000_000

// Equivalent checks I/O equivalence of a and b after the flush prefix.
// Both circuits must have the same number of primary inputs and outputs
// and a reset line at the same PI position.
func Equivalent(a, b *netlist.Circuit, opt Options) (bool, *Counterexample, error) {
	if len(a.PIs) != len(b.PIs) || len(a.POs) != len(b.POs) {
		return false, nil, fmt.Errorf("verify: interface mismatch: %d/%d PIs, %d/%d POs",
			len(a.PIs), len(b.PIs), len(a.POs), len(b.POs))
	}
	ra, rb := piIndex(a, a.ResetPI), piIndex(b, b.ResetPI)
	if ra < 0 || rb < 0 || ra != rb {
		return false, nil, fmt.Errorf("verify: both circuits need the reset line at the same input position")
	}
	if opt.FlushCycles < 1 {
		opt.FlushCycles = 1
	}
	if opt.MaxNodes == 0 {
		opt.MaxNodes = defaultMaxNodes
	}

	na, nb := len(a.DFFs), len(b.DFFs)
	ni := len(a.PIs)
	// Variable order: A state bits, B state bits, shared inputs.
	m := bdd.New(na + nb + ni)

	fa, ga, err := buildFunctions(m, a, 0, na+nb)
	if err != nil {
		return false, nil, err
	}
	fb, gb, err := buildFunctions(m, b, na, na+nb)
	if err != nil {
		return false, nil, err
	}
	if m.Size() > opt.MaxNodes {
		return false, nil, fmt.Errorf("verify: BDD blew up building the product logic")
	}

	next := append(append([]bdd.Ref{}, fa...), fb...)
	resetVar := na + nb + ra

	// Flush: both machines under reset=1, all other inputs free, from
	// the full product universe.
	flushNext := make([]bdd.Ref, len(next))
	for i, f := range next {
		flushNext[i] = m.Restrict(f, resetVar, true)
	}
	img := newImager(m, next, na+nb, opt.MaxNodes)
	flushImg := newImager(m, flushNext, na+nb, opt.MaxNodes)
	set := bdd.True
	for k := 0; k < opt.FlushCycles; k++ {
		if set, err = flushImg.image(set); err != nil {
			return false, nil, err
		}
	}

	// Miter: any reached product state with differing outputs under any
	// input is a violation. Check while traversing to the fixpoint.
	checkSet := func(states bdd.Ref) (*Counterexample, error) {
		for k := range ga {
			bad := m.And(states, m.Xor(ga[k], gb[k]))
			if bad == bdd.False {
				continue
			}
			assign, _ := m.AnySat(bad, m.NumVars())
			ce := &Counterexample{Output: k, Inputs: assign[na+nb:]}
			ce.StateA = assign[:na]
			ce.StateB = assign[na : na+nb]
			return ce, nil
		}
		return nil, nil
	}

	reached := set
	frontier := set
	for frontier != bdd.False {
		if ce, err := checkSet(frontier); err != nil || ce != nil {
			return false, ce, err
		}
		nxt, err := img.image(frontier)
		if err != nil {
			return false, nil, err
		}
		frontier = m.And(nxt, m.Not(reached))
		reached = m.Or(reached, nxt)
		if m.Size() > opt.MaxNodes {
			return false, nil, fmt.Errorf("verify: BDD blew up during product traversal")
		}
	}
	return true, nil, nil
}

func piIndex(c *netlist.Circuit, gate int) int {
	for i, id := range c.PIs {
		if id == gate {
			return i
		}
	}
	return -1
}

// buildFunctions evaluates the circuit's gates as BDDs: state bits use
// variables stateBase..stateBase+#DFF-1, inputs use inputBase+i.
// Returns the next-state and output function vectors.
func buildFunctions(m *bdd.Manager, c *netlist.Circuit, stateBase, inputBase int) (next, outs []bdd.Ref, err error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, nil, err
	}
	piIdx := map[int]int{}
	for i, id := range c.PIs {
		piIdx[id] = i
	}
	dffIdx := map[int]int{}
	for i, id := range c.DFFs {
		dffIdx[id] = i
	}
	val := make([]bdd.Ref, len(c.Gates))
	for _, id := range order {
		g := c.Gates[id]
		switch g.Type {
		case netlist.Input:
			val[id] = m.Var(inputBase + piIdx[id])
		case netlist.DFF:
			val[id] = m.Var(stateBase + dffIdx[id])
		case netlist.Const0:
			val[id] = bdd.False
		case netlist.Const1:
			val[id] = bdd.True
		case netlist.Buf, netlist.Output:
			val[id] = val[g.Fanin[0]]
		case netlist.Not:
			val[id] = m.Not(val[g.Fanin[0]])
		case netlist.And, netlist.Nand:
			acc := bdd.True
			for _, f := range g.Fanin {
				acc = m.And(acc, val[f])
			}
			if g.Type == netlist.Nand {
				acc = m.Not(acc)
			}
			val[id] = acc
		case netlist.Or, netlist.Nor:
			acc := bdd.False
			for _, f := range g.Fanin {
				acc = m.Or(acc, val[f])
			}
			if g.Type == netlist.Nor {
				acc = m.Not(acc)
			}
			val[id] = acc
		case netlist.Xor, netlist.Xnor:
			acc := bdd.False
			for _, f := range g.Fanin {
				acc = m.Xor(acc, val[f])
			}
			if g.Type == netlist.Xnor {
				acc = m.Not(acc)
			}
			val[id] = acc
		default:
			return nil, nil, fmt.Errorf("verify: unsupported gate type %v", g.Type)
		}
	}
	next = make([]bdd.Ref, len(c.DFFs))
	for i, id := range c.DFFs {
		next[i] = val[c.Gates[id].Fanin[0]]
	}
	outs = make([]bdd.Ref, len(c.POs))
	for i, id := range c.POs {
		outs[i] = val[id]
	}
	return next, outs, nil
}

// imager computes one-step images of product-state sets (existentially
// quantifying current state and inputs) by recursive output splitting.
type imager struct {
	m        *bdd.Manager
	next     []bdd.Ref
	nb       int
	maxNodes int
	memo     map[memoKey]bdd.Ref
}

type memoKey struct {
	depth int
	set   bdd.Ref
}

func newImager(m *bdd.Manager, next []bdd.Ref, nb, maxNodes int) *imager {
	return &imager{m: m, next: next, nb: nb, maxNodes: maxNodes, memo: map[memoKey]bdd.Ref{}}
}

func (im *imager) image(set bdd.Ref) (bdd.Ref, error) {
	return im.rec(set, 0)
}

func (im *imager) rec(constraint bdd.Ref, depth int) (bdd.Ref, error) {
	if constraint == bdd.False {
		return bdd.False, nil
	}
	if depth == im.nb {
		return bdd.True, nil
	}
	if im.m.Size() > im.maxNodes {
		return bdd.False, fmt.Errorf("verify: image computation exceeded %d nodes", im.maxNodes)
	}
	key := memoKey{depth, constraint}
	if r, ok := im.memo[key]; ok {
		return r, nil
	}
	f := im.next[depth]
	hi, err := im.rec(im.m.And(constraint, f), depth+1)
	if err != nil {
		return bdd.False, err
	}
	lo, err := im.rec(im.m.And(constraint, im.m.Not(f)), depth+1)
	if err != nil {
		return bdd.False, err
	}
	v := im.m.Var(depth)
	out := im.m.Or(im.m.And(v, hi), im.m.And(im.m.Not(v), lo))
	im.memo[key] = out
	return out, nil
}
