package encode

import (
	"math/rand"
	"testing"

	"seqatpg/internal/fsm"
)

func TestMinBits(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{24, 5}, {27, 5}, {32, 5}, {33, 6}, {47, 6}, {94, 7}, {121, 7},
	}
	for _, c := range cases {
		if got := MinBits(c.n); got != c.want {
			t.Errorf("MinBits(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func genMachine(t *testing.T, states int, seed int64) *fsm.FSM {
	t.Helper()
	m, err := fsm.Generate(fsm.GenSpec{
		Name: "enc", Inputs: 4, Outputs: 4, States: states, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAssignProducesValidEncoding(t *testing.T) {
	m := genMachine(t, 11, 3)
	for _, alg := range []Algorithm{InputDominant, OutputDominant, Combined} {
		enc := Assign(m, alg)
		if enc.Bits != 4 {
			t.Errorf("%v: bits = %d, want 4", alg, enc.Bits)
		}
		if len(enc.Code) != 11 {
			t.Fatalf("%v: %d codes, want 11", alg, len(enc.Code))
		}
		seen := map[uint64]bool{}
		for s, c := range enc.Code {
			if c >= 1<<uint(enc.Bits) {
				t.Errorf("%v: code of state %d out of range: %d", alg, s, c)
			}
			if seen[c] {
				t.Errorf("%v: duplicate code %d", alg, c)
			}
			seen[c] = true
		}
		if enc.Code[m.Reset] != 0 {
			t.Errorf("%v: reset state must get code 0, got %d", alg, enc.Code[m.Reset])
		}
	}
}

func TestAssignDeterministic(t *testing.T) {
	m := genMachine(t, 13, 8)
	a := Assign(m, Combined)
	b := Assign(m, Combined)
	for s := range a.Code {
		if a.Code[s] != b.Code[s] {
			t.Fatalf("non-deterministic assignment at state %d", s)
		}
	}
}

func TestAlgorithmsDiffer(t *testing.T) {
	// On a nontrivial machine the three heuristics should usually give
	// different embeddings; that difference is what creates the paper's
	// per-encoding circuit variants.
	m := genMachine(t, 20, 12)
	ji := Assign(m, InputDominant)
	jo := Assign(m, OutputDominant)
	same := true
	for s := range ji.Code {
		if ji.Code[s] != jo.Code[s] {
			same = false
			break
		}
	}
	if same {
		t.Error("input- and output-dominant assignments are identical; heuristics look inert")
	}
}

func TestAlgorithmString(t *testing.T) {
	if InputDominant.String() != "ji" || OutputDominant.String() != "jo" || Combined.String() != "jc" {
		t.Error("algorithm suffixes must match the paper's circuit naming")
	}
}

func TestAssignSingleState(t *testing.T) {
	m := &fsm.FSM{
		Name: "one", NumInputs: 1, NumOutputs: 1,
		States: []string{"a"}, Reset: 0,
	}
	enc := Assign(m, Combined)
	if enc.Bits != 1 || enc.Code[0] != 0 {
		t.Errorf("single state: %+v", enc)
	}
}

// totalCost is the weighted-Hamming objective the embedding minimizes.
func totalCost(m *fsm.FSM, enc Encoding, alg Algorithm) int {
	// Recompute the affinity weights through the exported Assign surface:
	// the heuristic itself is private, so approximate the objective with
	// the input-dominant notion — common-predecessor pairs.
	cost := 0
	for s := 0; s < m.NumStates(); s++ {
		idxs := m.TransFrom(s)
		for a := 0; a < len(idxs); a++ {
			for b := a + 1; b < len(idxs); b++ {
				x, y := m.Trans[idxs[a]].To, m.Trans[idxs[b]].To
				cost += hamming(enc.Code[x], enc.Code[y])
			}
		}
	}
	return cost
}

func hamming(a, b uint64) int {
	n := 0
	for x := a ^ b; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// TestAssignBeatsRandomEmbedding: the input-dominant embedding should
// have a lower common-predecessor cost than random assignments do on
// average — the heuristic must actually optimize its objective.
func TestAssignBeatsRandomEmbedding(t *testing.T) {
	m := genMachine(t, 14, 99)
	enc := Assign(m, InputDominant)
	got := totalCost(m, enc, InputDominant)

	rng := rand.New(rand.NewSource(1))
	worse := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		perm := rng.Perm(1 << uint(enc.Bits))[:m.NumStates()]
		codes := make([]uint64, m.NumStates())
		for s := range codes {
			codes[s] = uint64(perm[s])
		}
		if totalCost(m, Encoding{Bits: enc.Bits, Code: codes}, InputDominant) >= got {
			worse++
		}
	}
	if worse < trials*2/3 {
		t.Errorf("embedding beats only %d of %d random assignments", worse, trials)
	}
}
