// Package encode implements jedi-style state assignment: embedding the
// states of an FSM into the Boolean hypercube using the minimum number
// of bits, guided by a state-affinity graph. Three affinity heuristics
// are provided, mirroring the jedi options used in the reproduced paper:
// input-dominant (.ji), output-dominant (.jo), and combined (.jc).
package encode

import (
	"fmt"
	"math/bits"
	"sort"

	"seqatpg/internal/fsm"
)

// Algorithm selects the affinity heuristic used to weight state pairs.
type Algorithm int

// The three jedi-like state assignment heuristics.
const (
	// InputDominant weights state pairs that share predecessor states:
	// next states of a common source should receive adjacent codes so
	// the next-state logic shares cubes.
	InputDominant Algorithm = iota
	// OutputDominant weights state pairs whose outgoing transitions
	// produce similar outputs, so the output logic shares cubes.
	OutputDominant
	// Combined sums the input- and output-dominant weights.
	Combined
)

// String returns the suffix used in circuit names (.ji/.jo/.jc).
func (a Algorithm) String() string {
	switch a {
	case InputDominant:
		return "ji"
	case OutputDominant:
		return "jo"
	case Combined:
		return "jc"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Encoding is a state assignment: Code[s] is the Bits-wide binary code
// of state s.
type Encoding struct {
	Bits int
	Code []uint64
}

// MinBits returns the minimum number of state bits for n states.
func MinBits(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// Assign computes a minimum-bit state assignment for m using the given
// affinity heuristic. The embedding is a deterministic greedy placement
// followed by pairwise-swap refinement.
func Assign(m *fsm.FSM, alg Algorithm) Encoding {
	n := m.NumStates()
	nbits := MinBits(n)
	w := affinity(m, alg)

	// Greedy placement: order states by total affinity (descending);
	// the reset state is placed first at code 0 so the explicit reset
	// line of the synthesized circuit drives an all-zero code.
	totals := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			totals[i] += w[i][j]
		}
	}
	order := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if s != m.Reset {
			order = append(order, s)
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return totals[order[a]] > totals[order[b]] })
	order = append([]int{m.Reset}, order...)

	code := make([]uint64, n)
	assigned := make([]bool, n)
	usedCode := make([]bool, 1<<uint(nbits))
	for k, s := range order {
		if k == 0 {
			code[s] = 0
			usedCode[0] = true
			assigned[s] = true
			continue
		}
		bestCode, bestCost := -1, int(^uint(0)>>1)
		for c := 0; c < len(usedCode); c++ {
			if usedCode[c] {
				continue
			}
			cost := 0
			for t := 0; t < n; t++ {
				if assigned[t] && w[s][t] > 0 {
					cost += w[s][t] * bits.OnesCount64(uint64(c)^code[t])
				}
			}
			if cost < bestCost {
				bestCode, bestCost = c, cost
			}
		}
		code[s] = uint64(bestCode)
		usedCode[bestCode] = true
		assigned[s] = true
	}

	// Pairwise swap refinement (reset stays pinned at code 0).
	improve := func() bool {
		improved := false
		for a := 0; a < n; a++ {
			if a == m.Reset {
				continue
			}
			for b := a + 1; b < n; b++ {
				if b == m.Reset {
					continue
				}
				if swapGain(w, code, n, a, b) > 0 {
					code[a], code[b] = code[b], code[a]
					improved = true
				}
			}
		}
		return improved
	}
	for pass := 0; pass < 4 && improve(); pass++ {
	}

	return Encoding{Bits: nbits, Code: code}
}

// swapGain returns the cost reduction achieved by swapping the codes of
// states a and b (positive is better).
func swapGain(w [][]int, code []uint64, n, a, b int) int {
	cost := func(s int, c uint64) int {
		total := 0
		for t := 0; t < n; t++ {
			if t == s || t == a || t == b {
				continue
			}
			if w[s][t] > 0 {
				total += w[s][t] * bits.OnesCount64(c^code[t])
			}
		}
		return total
	}
	before := cost(a, code[a]) + cost(b, code[b])
	after := cost(a, code[b]) + cost(b, code[a])
	return before - after
}

// affinity builds the symmetric state-pair weight matrix for the given
// heuristic.
func affinity(m *fsm.FSM, alg Algorithm) [][]int {
	n := m.NumStates()
	w := make([][]int, n)
	for i := range w {
		w[i] = make([]int, n)
	}
	add := func(a, b, inc int) {
		if a == b {
			return
		}
		w[a][b] += inc
		w[b][a] += inc
	}
	if alg == InputDominant || alg == Combined {
		// Next states of a common source state attract each other.
		for s := 0; s < n; s++ {
			idxs := m.TransFrom(s)
			for x := 0; x < len(idxs); x++ {
				for y := x + 1; y < len(idxs); y++ {
					add(m.Trans[idxs[x]].To, m.Trans[idxs[y]].To, 1)
				}
			}
		}
	}
	if alg == OutputDominant || alg == Combined {
		// States whose outgoing transitions agree on many output bits
		// attract each other, weighted by the agreement count.
		for a := 0; a < n; a++ {
			ta := m.TransFrom(a)
			for b := a + 1; b < n; b++ {
				tb := m.TransFrom(b)
				agree := 0
				for _, ia := range ta {
					for _, ib := range tb {
						oa, ob := m.Trans[ia].Output, m.Trans[ib].Output
						same := 0
						for k := range oa {
							if oa[k] == ob[k] {
								same++
							}
						}
						// Only strong agreement counts, otherwise the
						// matrix saturates and conveys no preference.
						if same*2 > len(oa) {
							agree++
						}
					}
				}
				if agree > 0 {
					add(a, b, agree)
				}
			}
		}
	}
	return w
}
